#include "serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <thread>

#include "solver/refined.hpp"
#include "workload/stencil.hpp"
#include "xpu/fault.hpp"

namespace batchlin::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/// Exact compatibility check behind the hashed grouping key: equal
/// options and a shared sparsity pattern. Makes hash collisions degrade
/// batching, never correctness.
template <typename T>
bool bodies_compatible(const detail::typed_pending<T>& lhs,
                       const detail::typed_pending<T>& rhs)
{
    return lhs.request.opts == rhs.request.opts &&
           solver::can_coalesce(lhs.request.a, rhs.request.a);
}

bool entries_compatible(const detail::pending_entry& lhs,
                        const detail::pending_entry& rhs)
{
    if (lhs.body.index() != rhs.body.index()) {
        return false;
    }
    return std::visit(
        [&](const auto& typed) {
            using typed_type = std::decay_t<decltype(typed)>;
            return bodies_compatible(typed,
                                     std::get<typed_type>(rhs.body));
        },
        lhs.body);
}

// Temporary stage probe (BATCHLIN_SERVE_STAGE_PROBE=1): accumulates
// per-stage wall time across all workers, printed at stop().
struct stage_probe {
    std::atomic<std::uint64_t> ns[10] = {};
    std::atomic<std::uint64_t> batches{0};
    static bool on()
    {
        // Read-only env lookup; nothing in batchlin calls setenv.
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        static const bool v = std::getenv("BATCHLIN_SERVE_STAGE_PROBE");
        return v;
    }
};
inline stage_probe g_stage_probe;
struct stage_timer {
    std::chrono::steady_clock::time_point t;
    stage_timer()
    {
        if (stage_probe::on()) t = std::chrono::steady_clock::now();
    }
    void lap(int i)
    {
        if (!stage_probe::on()) return;
        auto n = std::chrono::steady_clock::now();
        g_stage_probe.ns[i].fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(n - t)
                    .count()),
            std::memory_order_relaxed);
        t = n;
    }
};

}  // namespace

std::string to_string(request_status status)
{
    switch (status) {
    case request_status::ok:
        return "ok";
    case request_status::rejected:
        return "rejected";
    case request_status::expired:
        return "expired";
    case request_status::failed:
        return "failed";
    }
    return "?";
}

double latency_window::quantile(double q) const
{
    if (samples_.empty()) {
        return 0.0;
    }
    std::vector<double> sorted(samples_);
    const std::size_t rank = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
    std::nth_element(sorted.begin(), sorted.begin() + rank, sorted.end());
    return sorted[rank];
}

solve_service::solve_service(xpu::exec_policy policy, service_config config)
    : config_(std::move(config)),
      start_(std::chrono::steady_clock::now()),
      latency_(config_.latency_window)
{
    BATCHLIN_ENSURE_MSG(config_.workers > 0,
                        "service needs at least one worker per shard");
    BATCHLIN_ENSURE_MSG(config_.shards > 0,
                        "service needs at least one shard");
    BATCHLIN_ENSURE_MSG(config_.steal_threshold >= 0,
                        "steal threshold cannot be negative");
    BATCHLIN_ENSURE_MSG(config_.max_batch > 0,
                        "max_batch must be positive");
    BATCHLIN_ENSURE_MSG(config_.max_queue_systems > 0,
                        "admission bound must be positive");
    BATCHLIN_ENSURE_MSG(config_.max_wait.count() >= 0,
                        "batching window cannot be negative");
    BATCHLIN_ENSURE_MSG(config_.idle_flush.count() >= 0,
                        "idle flush window cannot be negative");
    // Operator escape hatch: flip the launch mode without rebuilding the
    // caller (scripts/check.sh runs whole suites per mode this way). The
    // override replaces the *default* only — a policy that explicitly
    // selects a non-direct mode keeps it, so mode-specific tests stay
    // meaningful under a mode-sweeping harness.
    if (policy.launch_mode == xpu::launch_mode::direct) {
        // Read-only env lookup; nothing in batchlin calls setenv.
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        const char* env = std::getenv("BATCHLIN_LAUNCH_MODE");
        if (env != nullptr && *env != '\0') {
            policy.launch_mode = xpu::parse_launch_mode(env);
        }
    }
    launch_mode_ = policy.launch_mode;
    if (launch_mode_ != xpu::launch_mode::direct) {
        BATCHLIN_ENSURE_MSG(config_.graph_cache_entries > 0,
                            "graph launch modes need at least one cache "
                            "slot per worker");
    }
    batch_histogram_.assign(static_cast<std::size_t>(config_.max_batch) + 1,
                            0);

    // Shard override (same escape-hatch contract as the launch mode): a
    // config still at the single-shard default picks up BATCHLIN_SHARDS /
    // BATCHLIN_SHARD_DEVICES; a config that explicitly selects sharding
    // keeps its setting. An explicit device list wins over a bare count.
    if (config_.shards == 1 && config_.shard_devices.empty()) {
        if (auto devices = shard::shard_devices_from_env()) {
            config_.shard_devices = std::move(*devices);
        } else if (auto count = shard::shards_from_env()) {
            config_.shards = *count;
        }
    }
    // Failover override (same escape-hatch contract): a config still at
    // the default picks up BATCHLIN_FAILOVER=1; an explicit setting wins.
    if (!config_.failover) {
        // Read-only env lookup; nothing in batchlin calls setenv.
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        const char* env = std::getenv("BATCHLIN_FAILOVER");
        if (env != nullptr && *env != '\0' && *env != '0') {
            config_.failover = true;
        }
    }
    registry_ = config_.shard_devices.empty()
                    ? shard::registry::uniform(config_.shards, "PVC-1S",
                                               policy)
                    : shard::registry::from_names(config_.shard_devices,
                                                  policy);
    config_.shards = registry_.size();
    {
        std::vector<perf::device_spec> specs;
        specs.reserve(registry_.entries().size());
        for (const shard::device_entry& e : registry_.entries()) {
            specs.push_back(e.spec);
        }
        router_ = shard::router(std::move(specs));
    }

    for (index_type sidx = 0; sidx < config_.shards; ++sidx) {
        lanes_.emplace_back();
        shard_lane& lane = lanes_.back();
        lane.id = sidx;
        lane.spec = registry_.at(sidx).spec;
        lane.policy = registry_.at(sidx).policy;
        if (static_cast<std::size_t>(sidx) < config_.shard_faults.size()) {
            lane.policy.faults =
                config_.shard_faults[static_cast<std::size_t>(sidx)];
        }
        if (launch_mode_ == xpu::launch_mode::persistent) {
            // Every queued entry carries at least one system, so the
            // admission budget bounds the entry count and no single ring
            // can ever be full with the budget respected.
            lane.ring = std::make_unique<mpmc_ring<detail::pending_ptr>>(
                static_cast<std::size_t>(config_.max_queue_systems));
        }
        for (int i = 0; i < config_.workers; ++i) {
            worker_queues_.emplace_back(lane.policy);
            // A long-lived service must not accumulate unbounded
            // profiling state even if an operator enables profiling for a
            // while.
            worker_queues_.back().set_launch_history_capacity(1024);
            graph_caches_.emplace_back();
        }
    }

    workers_.reserve(static_cast<std::size_t>(config_.workers) *
                     static_cast<std::size_t>(config_.shards));
    for (index_type sidx = 0; sidx < config_.shards; ++sidx) {
        for (int i = 0; i < config_.workers; ++i) {
            if (launch_mode_ == xpu::launch_mode::persistent) {
                workers_.emplace_back(
                    [this, sidx, i] { persistent_loop(sidx, i); });
            } else {
                workers_.emplace_back(
                    [this, sidx, i] { worker_loop(sidx, i); });
            }
        }
    }
    // The hang watchdog only earns its thread when it can actually act:
    // failover on, a nonzero scan interval, and somewhere to fail over
    // to. Worker-side eviction (retry exhaustion) runs regardless.
    if (config_.failover && lanes_.size() > 1 &&
        config_.watchdog_interval.count() > 0 &&
        config_.hang_timeout.count() > 0) {
        watchdog_ = std::thread([this] { watchdog_loop(); });
    }
}

solve_service::~solve_service() { stop(); }

bool solve_service::accepting() const
{
    return accepting_.load(std::memory_order_acquire);
}

void solve_service::drain()
{
    if (launch_mode_ == xpu::launch_mode::persistent) {
        // No condition variable in the lock-free path; poll the progress
        // counters (see the member comment for why the predicate is never
        // transiently true while an entry changes hands).
        while (ring_pending_.load(std::memory_order_acquire) != 0 ||
               ring_in_flight_.load(std::memory_order_acquire) != 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        return;
    }
    std::unique_lock<std::mutex> lk(mu_);
    cv_idle_.wait(lk, [&] {
        return queued_systems_ == 0 && in_flight_entries_ == 0;
    });
}

void solve_service::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        accepting_.store(false, std::memory_order_release);
        stopping_.store(true, std::memory_order_release);
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    // Ring unconditionally so parked resident workers observe stopping_:
    // a worker parking concurrently with this bump sees the generation
    // change in its `word == heard` re-check and does not sleep.
    bell_.ring_always();
    for (std::thread& worker : workers_) {
        if (worker.joinable()) {
            worker.join();
        }
    }
    if (watchdog_.joinable()) {
        watchdog_.join();
    }
    if (stage_probe::on()) {
        const double n = std::max<double>(
            1.0, static_cast<double>(g_stage_probe.batches.load()));
        static const char* names[] = {"pop",   "group", "exec_total",
                                      "parts", "solve", "scatter",
                                      "stats", "wake"};
        std::fprintf(stderr, "stage probe (%0.0f batches), us/batch:\n", n);
        for (int i = 0; i < 8; ++i) {
            std::fprintf(stderr, "  %-10s %8.2f\n", names[i],
                         static_cast<double>(g_stage_probe.ns[i].load()) /
                             1e3 / n);
        }
    }
    // A submitter that passed the accepting check just before stop() may
    // have published an entry the exiting workers no longer saw; resolve
    // such stragglers as rejected so no ticket is orphaned.
    for (shard_lane& lane : lanes_) {
        if (!lane.ring) {
            continue;
        }
        detail::pending_ptr leftover;
        while (lane.ring->try_pop(leftover)) {
            ring_pending_.fetch_sub(1, std::memory_order_acq_rel);
            const auto items = static_cast<size_type>(leftover->items);
            ring_systems_.fetch_sub(items, std::memory_order_acq_rel);
            lane.ring_systems.fetch_sub(items, std::memory_order_relaxed);
            lane.backlog_ns.fetch_sub(leftover->cost_ns,
                                      std::memory_order_relaxed);
            ++rejected_requests_;
            reply_without_solving(*leftover, request_status::rejected);
        }
    }
    // Windowed flavor of the same sweep: an evicted lane whose workers
    // exited mid-failover (or a submit racing stop) may leave queued
    // entries behind; no ticket may be orphaned.
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (shard_lane& lane : lanes_) {
            while (!lane.queue.empty()) {
                detail::pending_ptr leftover =
                    std::move(lane.queue.front());
                lane.queue.pop_front();
                const auto items =
                    static_cast<size_type>(leftover->items);
                lane.queued_systems -= items;
                queued_systems_ -= items;
                lane.backlog_ns.fetch_sub(leftover->cost_ns,
                                          std::memory_order_relaxed);
                ++rejected_requests_;
                reply_without_solving(*leftover,
                                      request_status::rejected);
            }
        }
    }
}

service_stats solve_service::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    service_stats s;
    s.submitted_requests = submitted_requests_;
    s.submitted_systems = submitted_systems_;
    s.completed_requests = completed_requests_;
    s.completed_systems = completed_systems_;
    s.rejected_requests = rejected_requests_;
    s.expired_requests =
        expired_requests_.load(std::memory_order_relaxed);
    s.failed_requests = failed_requests_.load(std::memory_order_relaxed);
    s.batches_launched = batches_launched_;
    s.launch_faults = launch_faults_;
    s.launch_retries = launch_retries_;
    s.degraded_launches = degraded_launches_;
    s.recovered_requests = recovered_requests_;
    s.launches_recorded = launches_recorded_;
    s.replays = replays_;
    s.rebind_only = rebind_only_;
    s.refined_batches = refined_batches_;
    s.refine_sweeps = refine_sweeps_;
    s.refine_fallbacks = refine_fallbacks_;
    s.watchdog_evictions =
        watchdog_evictions_.load(std::memory_order_relaxed);
    s.migrations = migrations_.load(std::memory_order_relaxed);
    s.migrated_systems = migrated_systems_.load(std::memory_order_relaxed);
    s.shed_requests = shed_requests_.load(std::memory_order_relaxed);
    s.brownout_level =
        static_cast<int>(brownout_level_.load(std::memory_order_relaxed));
    s.brownout_max =
        static_cast<int>(brownout_max_.load(std::memory_order_relaxed));
    s.brownout_batches =
        brownout_batches_.load(std::memory_order_relaxed);
    if (launch_mode_ == xpu::launch_mode::persistent) {
        s.queue_depth_requests =
            ring_pending_.load(std::memory_order_acquire);
        s.queue_depth_systems = static_cast<std::uint64_t>(
            ring_systems_.load(std::memory_order_acquire));
    } else {
        std::uint64_t depth_requests = 0;
        for (const shard_lane& lane : lanes_) {
            depth_requests += lane.queue.size();
        }
        s.queue_depth_requests = depth_requests;
        s.queue_depth_systems = static_cast<std::uint64_t>(queued_systems_);
    }
    s.uptime_seconds =
        seconds_between(start_, std::chrono::steady_clock::now());
    s.shards.reserve(lanes_.size());
    for (const shard_lane& lane : lanes_) {
        shard_stats ss;
        ss.shard = lane.id;
        ss.device = lane.spec.name;
        ss.routed_requests =
            lane.routed_requests.load(std::memory_order_relaxed);
        ss.routed_systems =
            lane.routed_systems.load(std::memory_order_relaxed);
        ss.completed_systems = lane.completed_systems;
        ss.batches_launched = lane.batches_launched;
        ss.steals = lane.steals.load(std::memory_order_relaxed);
        ss.stolen_systems =
            lane.stolen_systems.load(std::memory_order_relaxed);
        ss.launch_faults = lane.launch_faults;
        ss.breaker_trips = lane.brk.trips;
        ss.breaker_active = lane.brk.active();
        switch (lane.guard.current()) {
        case shard::lane_state::healthy:
            ss.state = "healthy";
            break;
        case shard::lane_state::evicted:
            ss.state = "evicted";
            break;
        case shard::lane_state::probing:
            ss.state = "probing";
            break;
        }
        ss.evictions =
            lane.guard.evictions.load(std::memory_order_relaxed);
        ss.probes = lane.guard.probes.load(std::memory_order_relaxed);
        ss.probe_successes =
            lane.guard.probe_successes.load(std::memory_order_relaxed);
        ss.migrated_requests =
            lane.migrated_requests.load(std::memory_order_relaxed);
        ss.migrated_systems =
            lane.migrated_systems.load(std::memory_order_relaxed);
        ss.heartbeat = lane.heartbeat.load(std::memory_order_relaxed);
        ss.queue_depth_systems =
            launch_mode_ == xpu::launch_mode::persistent
                ? static_cast<std::uint64_t>(
                      lane.ring_systems.load(std::memory_order_acquire))
                : static_cast<std::uint64_t>(lane.queued_systems);
        ss.backlog_ns = lane.backlog_ns.load(std::memory_order_relaxed);
        ss.modeled_busy_seconds =
            static_cast<double>(lane.modeled_busy_ns) * 1e-9;
        ss.solves_per_sec =
            s.uptime_seconds > 0.0
                ? static_cast<double>(lane.completed_systems) /
                      s.uptime_seconds
                : 0.0;
        s.steals += ss.steals;
        s.breaker_trips += ss.breaker_trips;
        s.breaker_active = s.breaker_active || ss.breaker_active;
        s.evictions += ss.evictions;
        s.probes += ss.probes;
        s.probe_successes += ss.probe_successes;
        s.shards.push_back(std::move(ss));
    }
    s.batch_size_histogram = batch_histogram_;
    s.p50_latency_seconds = latency_.quantile(0.50);
    s.p99_latency_seconds = latency_.quantile(0.99);
    s.solves_per_sec =
        s.uptime_seconds > 0.0
            ? static_cast<double>(completed_systems_) / s.uptime_seconds
            : 0.0;
    s.mean_batch_size =
        batches_launched_ > 0
            ? static_cast<double>(batched_systems_sum_) /
                  static_cast<double>(batches_launched_)
            : 0.0;
    return s;
}

shard::decision solve_service::route_request(std::uint64_t key,
                                             index_type items,
                                             index_type rows,
                                             index_type nnz,
                                             index_type exclude) const
{
    if (lanes_.size() == 1) {
        return router_.route(key, items, rows, nnz, {});
    }
    std::vector<std::int64_t> backlog;
    backlog.reserve(lanes_.size());
    std::vector<char> alive;
    alive.reserve(lanes_.size());
    bool any_dead = false;
    for (const shard_lane& lane : lanes_) {
        backlog.push_back(lane.backlog_ns.load(std::memory_order_relaxed));
        const bool routable =
            lane.guard.available() && lane.id != exclude;
        alive.push_back(routable ? 1 : 0);
        any_dead = any_dead || !routable;
    }
    return router_.route(key, items, rows, nnz, backlog,
                         any_dead ? &alive : nullptr);
}

std::int64_t solve_service::steady_now_ns()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

index_type solve_service::alive_lanes_excluding(index_type except) const
{
    index_type alive = 0;
    for (const shard_lane& lane : lanes_) {
        if (lane.id != except && lane.guard.available()) {
            ++alive;
        }
    }
    return alive;
}

bool solve_service::evict_lane(shard_lane& lane, bool by_watchdog)
{
    if (!lane.guard.try_evict()) {
        return false;
    }
    lane.evicted_at_ns.store(steady_now_ns(), std::memory_order_release);
    if (by_watchdog) {
        watchdog_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
}

void solve_service::migrate_entry(shard_lane& from,
                                  detail::pending_ptr entry)
{
    // Precondition: the entry is fully off-books — not on any queue or
    // ring, its backlog charge retired, and (persistent mode) its global
    // admission budget released. Called without mu_ held.
    const auto items = static_cast<size_type>(entry->items);
    // Deadline checkpoint 5 of 5 (failover re-queue): a request that
    // outlived its deadline while its shard died expires instead of
    // riding the migration.
    if (entry->deadline <= std::chrono::steady_clock::now()) {
        expired_requests_.fetch_add(1, std::memory_order_relaxed);
        reply_without_solving(*entry, request_status::expired);
        return;
    }
    const index_type cap = config_.max_migrations > 0
                               ? config_.max_migrations
                               : config_.shards;
    if (entry->migrations >= cap ||
        alive_lanes_excluding(from.id) == 0) {
        failed_requests_.fetch_add(1, std::memory_order_relaxed);
        reply_without_solving(
            *entry, request_status::failed,
            "failover: no healthy shard left to migrate to");
        return;
    }
    const auto [rows, nnz] = std::visit(
        [](const auto& typed) {
            return std::make_pair(
                std::visit([](const auto& m) { return m.rows(); },
                           typed.request.a),
                detail::nnz_per_item(typed.request.a));
        },
        entry->body);
    const shard::decision where =
        route_request(entry->key, entry->items, rows, nnz, from.id);
    shard_lane& target = lanes_[static_cast<std::size_t>(where.shard)];
    entry->shard = where.shard;
    entry->cost_ns = where.cost_ns;
    ++entry->migrations;
    migrations_.fetch_add(1, std::memory_order_relaxed);
    migrated_systems_.fetch_add(static_cast<std::uint64_t>(items),
                                std::memory_order_relaxed);
    from.migrated_requests.fetch_add(1, std::memory_order_relaxed);
    from.migrated_systems.fetch_add(static_cast<std::uint64_t>(items),
                                    std::memory_order_relaxed);
    target.backlog_ns.fetch_add(where.cost_ns, std::memory_order_relaxed);
    if (launch_mode_ == xpu::launch_mode::persistent) {
        // Re-reserve the global budget the pop released. Unconditional:
        // already-admitted work must not be dropped because new arrivals
        // filled the budget meanwhile — the transient overshoot is
        // bounded by one batch and drains with the backlog.
        ring_systems_.fetch_add(items, std::memory_order_acq_rel);
        target.ring_systems.fetch_add(items, std::memory_order_relaxed);
        ring_pending_.fetch_add(1, std::memory_order_seq_cst);
        while (!target.ring->try_push(entry)) {
            std::this_thread::yield();
        }
        bell_.ring();
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        target.queue.push_back(std::move(entry));
        target.queued_systems += items;
        queued_systems_ += items;
    }
    cv_work_.notify_all();
}

void solve_service::failover_drain(shard_lane& lane)
{
    if (launch_mode_ == xpu::launch_mode::persistent) {
        detail::pending_ptr entry;
        while (lane.ring->try_pop(entry)) {
            // Same in_flight-before-pending order as pop_from: the drain
            // predicate must never observe the entry in neither counter.
            ring_in_flight_.fetch_add(1, std::memory_order_acq_rel);
            ring_pending_.fetch_sub(1, std::memory_order_acq_rel);
            const auto items = static_cast<size_type>(entry->items);
            ring_systems_.fetch_sub(items, std::memory_order_acq_rel);
            lane.ring_systems.fetch_sub(items, std::memory_order_relaxed);
            lane.backlog_ns.fetch_sub(entry->cost_ns,
                                      std::memory_order_relaxed);
            migrate_entry(lane, std::move(entry));
            ring_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        }
        return;
    }
    std::vector<detail::pending_ptr> drained;
    {
        std::lock_guard<std::mutex> lk(mu_);
        while (!lane.queue.empty()) {
            detail::pending_ptr entry = std::move(lane.queue.front());
            lane.queue.pop_front();
            const auto items = static_cast<size_type>(entry->items);
            lane.queued_systems -= items;
            queued_systems_ -= items;
            // Booked in-flight for the handoff so drain() cannot observe
            // a transient "all quiet" while entries sit in the local
            // vector.
            ++in_flight_entries_;
            lane.backlog_ns.fetch_sub(entry->cost_ns,
                                      std::memory_order_relaxed);
            drained.push_back(std::move(entry));
        }
    }
    if (drained.empty()) {
        return;
    }
    cv_space_.notify_all();
    const std::size_t count = drained.size();
    for (detail::pending_ptr& entry : drained) {
        migrate_entry(lane, std::move(entry));
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        in_flight_entries_ -= count;
        if (queued_systems_ == 0 && in_flight_entries_ == 0) {
            cv_idle_.notify_all();
        }
    }
}

bool solve_service::send_probe(xpu::queue& q) const
{
    // Synthetic probe batch: a single 4-row SPD tridiagonal CG solve
    // built by the service — client data never rides a suspect device.
    // The probe advances the queue's launch counter like any launch, so
    // a device-lost schedule with a revival index is eventually escaped.
    try {
        solver::batch_matrix<double> a{
            work::stencil_3pt<double>(1, 4, 0x9b0be5eedULL)};
        mat::batch_dense<double> b = work::random_rhs<double>(1, 4, 7);
        mat::batch_dense<double> x(1, 4, 1);
        solver::solve_options opts;
        opts.solver = solver::solver_type::cg;
        opts.criterion = batchlin::stop::relative(1e-8, 64);
        std::vector<solver::assembly_part<double>> part;
        part.push_back({&a, &b, &x});
        (void)solver::solve_coalesced<double>(q, part, opts);
        return true;
    } catch (...) {
        return false;
    }
}

bool solve_service::maybe_probe(shard_lane& lane, xpu::queue& q)
{
    if (lane.guard.available()) {
        return true;
    }
    const std::int64_t cooldown_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            config_.probe_interval)
            .count();
    if (steady_now_ns() -
            lane.evicted_at_ns.load(std::memory_order_acquire) <
        cooldown_ns) {
        return false;
    }
    if (!lane.guard.try_begin_probe()) {
        return false;
    }
    if (send_probe(q)) {
        lane.consecutive_exhausted.store(0, std::memory_order_relaxed);
        lane.guard.probe_succeeded();
        // Routing weight is restored; wake windowed workers (and
        // submitters parked on backpressure) into the healthy path.
        cv_work_.notify_all();
        cv_space_.notify_all();
        return true;
    }
    lane.evicted_at_ns.store(steady_now_ns(), std::memory_order_release);
    lane.guard.probe_failed();
    return false;
}

void solve_service::watchdog_loop()
{
    const std::int64_t timeout_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            config_.hang_timeout)
            .count();
    while (!stopping_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(config_.watchdog_interval);
        if (stopping_.load(std::memory_order_acquire)) {
            return;
        }
        for (shard_lane& lane : lanes_) {
            const std::int64_t started =
                lane.launch_started_ns.load(std::memory_order_acquire);
            if (started == 0 ||
                steady_now_ns() - started < timeout_ns) {
                continue;
            }
            if (alive_lanes_excluding(lane.id) == 0) {
                continue;  // nowhere to fail over to
            }
            if (evict_lane(lane, /*by_watchdog=*/true)) {
                // The wedged batch itself is finished by its worker when
                // the launch returns or throws; everything still queued
                // behind it is drained onto the survivors now.
                failover_drain(lane);
                cv_work_.notify_all();
                bell_.ring_always();
            }
        }
    }
}

int solve_service::brownout_for_depth(size_type depth_systems) const
{
    if (!config_.brownout) {
        return 0;
    }
    const double frac =
        static_cast<double>(depth_systems) /
        static_cast<double>(config_.max_queue_systems);
    if (frac >= config_.brownout_high) {
        return 3;
    }
    if (frac >= config_.brownout_mid) {
        return 2;
    }
    if (frac >= config_.brownout_low) {
        return 1;
    }
    return 0;
}

size_type solve_service::steal_threshold_systems() const
{
    return config_.steal_threshold > 0
               ? static_cast<size_type>(config_.steal_threshold)
               : static_cast<size_type>(config_.max_batch);
}

int solve_service::steal_victim_locked(index_type thief_shard) const
{
    if (!config_.work_stealing || lanes_.size() < 2) {
        return -1;
    }
    int victim = -1;
    size_type deepest = steal_threshold_systems();
    for (const shard_lane& lane : lanes_) {
        if (lane.id == thief_shard) {
            continue;
        }
        if (lane.queued_systems > deepest) {
            deepest = lane.queued_systems;
            victim = static_cast<int>(lane.id);
        }
    }
    return victim;
}

int solve_service::steal_victim_ring(index_type thief_shard) const
{
    if (!config_.work_stealing || lanes_.size() < 2) {
        return -1;
    }
    int victim = -1;
    size_type deepest = steal_threshold_systems();
    for (const shard_lane& lane : lanes_) {
        if (lane.id == thief_shard) {
            continue;
        }
        const size_type depth =
            lane.ring_systems.load(std::memory_order_acquire);
        if (depth > deepest) {
            deepest = depth;
            victim = static_cast<int>(lane.id);
        }
    }
    return victim;
}

detail::pending_ptr solve_service::pop_entry_locked(shard_lane& lane,
                                                    std::size_t index)
{
    detail::pending_ptr entry = std::move(
        lane.queue[static_cast<std::deque<detail::pending_ptr>::size_type>(
            index)]);
    lane.queue.erase(lane.queue.begin() +
                     static_cast<std::deque<
                         detail::pending_ptr>::difference_type>(index));
    lane.queued_systems -= static_cast<size_type>(entry->items);
    queued_systems_ -= static_cast<size_type>(entry->items);
    ++in_flight_entries_;
    cv_space_.notify_all();
    return entry;
}

void solve_service::worker_loop(index_type shard_id, int local_id)
{
    const std::size_t widx =
        static_cast<std::size_t>(shard_id) *
            static_cast<std::size_t>(config_.workers) +
        static_cast<std::size_t>(local_id);
    xpu::queue& q = worker_queues_[widx];
    detail::graph_cache& cache = graph_caches_[widx];
    shard_lane& own = lanes_[static_cast<std::size_t>(shard_id)];
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        own.heartbeat.fetch_add(1, std::memory_order_relaxed);
        cv_work_.wait(lk, [&] {
            return stopping_ || !own.queue.empty() ||
                   steal_victim_locked(shard_id) >= 0 ||
                   (config_.failover && !own.guard.available());
        });
        if (config_.failover && !own.guard.available()) {
            // Evicted lane: this worker must not execute client batches.
            // Drain anything still queued here onto the survivors, then
            // spend the idle time half-open probing for revival.
            lk.unlock();
            failover_drain(own);
            if (stopping_.load(std::memory_order_acquire)) {
                lk.lock();
                if (own.queue.empty() &&
                    steal_victim_locked(shard_id) < 0) {
                    return;
                }
                continue;
            }
            if (!maybe_probe(own, q)) {
                // Still dead: sleep out the probe cooldown off-mutex so
                // an evicted lane costs no CPU (stop() interrupts via
                // the stopping_ check above on the next pass).
                std::this_thread::sleep_for(config_.probe_interval);
            }
            lk.lock();
            continue;
        }
        bool stolen = false;
        shard_lane* src = &own;
        if (own.queue.empty()) {
            const int victim = steal_victim_locked(shard_id);
            if (victim < 0) {
                if (stopping_) {
                    return;
                }
                continue;
            }
            src = &lanes_[static_cast<std::size_t>(victim)];
            stolen = true;
        }

        std::vector<detail::pending_ptr> batch;
        batch.push_back(pop_entry_locked(*src, 0));
        const auto now = std::chrono::steady_clock::now();
        if (batch.front()->deadline <= now) {
            // Already dead on arrival at the worker: complete it without
            // opening a batching window for it.
            expired_requests_.fetch_add(1, std::memory_order_relaxed);
            --in_flight_entries_;
            detail::pending_ptr dead = std::move(batch.front());
            src->backlog_ns.fetch_sub(dead->cost_ns,
                                      std::memory_order_relaxed);
            lk.unlock();
            reply_without_solving(*dead, request_status::expired);
            lk.lock();
            if (queued_systems_ == 0 && in_flight_entries_ == 0) {
                cv_idle_.notify_all();
            }
            continue;
        }

        index_type total = batch.front()->items;
        // Brownout level from the admission depth at dequeue: level 1+
        // shrinks the batching window so backlog drains sooner; levels
        // 2/3 additionally cap per-request work inside execute().
        const int brownout = brownout_for_depth(queued_systems_);
        const auto effective_wait =
            brownout >= 1 ? config_.max_wait / 4 : config_.max_wait;
        // A tripped breaker suspends coalescing on this shard: the leader
        // launches solo, so a fault pattern tied to batch composition
        // stops taking whole batches of unrelated requests down with it —
        // while the other shards keep coalescing.
        if (own.brk.remaining == 0) {
            if (stolen) {
                // Steal path: grab whatever compatible overflow the victim
                // holds and launch immediately — stolen work is backlog by
                // definition, there is nothing to hold a window open for.
                for (std::size_t i = 0;
                     i < src->queue.size() && total < config_.max_batch;) {
                    if (src->queue[i]->key == batch.front()->key &&
                        entries_compatible(*batch.front(),
                                           *src->queue[i])) {
                        batch.push_back(pop_entry_locked(*src, i));
                        total += batch.back()->items;
                    } else {
                        ++i;
                    }
                }
            } else {
                const auto window_end =
                    batch.front()->enqueued + effective_wait;
                for (;;) {
                    // Gather everything compatible already queued here.
                    for (std::size_t i = 0;
                         i < own.queue.size() &&
                         total < config_.max_batch;) {
                        if (own.queue[i]->key == batch.front()->key &&
                            entries_compatible(*batch.front(),
                                               *own.queue[i])) {
                            batch.push_back(pop_entry_locked(own, i));
                            total += batch.back()->items;
                        } else {
                            ++i;
                        }
                    }
                    if (total >= config_.max_batch || stopping_) {
                        break;
                    }
                    if (std::chrono::steady_clock::now() >= window_end) {
                        break;
                    }
                    // Hold the window open for companions; submit()
                    // notifies.
                    if (config_.idle_flush.count() > 0 &&
                        own.queue.empty()) {
                        // Adaptive flush: this shard's queue is empty, so
                        // with closed-loop clients no companion can
                        // arrive until an in-flight reply resolves. Grant
                        // stragglers only a short grace period instead of
                        // burning the whole window — this is what keeps
                        // low-concurrency coalesced throughput at batch1
                        // levels.
                        const auto flush_at =
                            std::chrono::steady_clock::now() +
                            config_.idle_flush;
                        cv_work_.wait_until(lk,
                                            std::min(flush_at, window_end));
                        if (own.queue.empty()) {
                            break;
                        }
                    } else {
                        cv_work_.wait_until(lk, window_end);
                    }
                }
            }
        }
        if (stolen) {
            own.steals.fetch_add(1, std::memory_order_relaxed);
            own.stolen_systems.fetch_add(static_cast<std::uint64_t>(total),
                                         std::memory_order_relaxed);
            for (detail::pending_ptr& entry : batch) {
                src->backlog_ns.fetch_sub(entry->cost_ns,
                                          std::memory_order_relaxed);
                own.backlog_ns.fetch_add(entry->cost_ns,
                                         std::memory_order_relaxed);
                entry->shard = own.id;
            }
        }

        const std::size_t popped = batch.size();
        lk.unlock();
        try {
            execute(own, q, cache, std::move(batch), brownout);
        } catch (...) {
            // execute() fails tickets individually; anything that still
            // escapes would terminate the worker thread (and with it the
            // process). Swallow it — affected tickets resolve through
            // their tickets; an unresolved slot would hang its client.
        }
        lk.lock();
        in_flight_entries_ -= popped;
        if (queued_systems_ == 0 && in_flight_entries_ == 0) {
            cv_idle_.notify_all();
        }
    }
}

void solve_service::persistent_loop(index_type shard_id, int local_id)
{
    const std::size_t widx =
        static_cast<std::size_t>(shard_id) *
            static_cast<std::size_t>(config_.workers) +
        static_cast<std::size_t>(local_id);
    xpu::queue& q = worker_queues_[widx];
    detail::graph_cache& cache = graph_caches_[widx];
    shard_lane& own = lanes_[static_cast<std::size_t>(shard_id)];
    int idle = 0;
    for (;;) {
        own.heartbeat.fetch_add(1, std::memory_order_relaxed);
        if (config_.failover && !own.guard.available()) {
            // Evicted lane, resident flavor: push queued work to the
            // survivors and spend the idle time half-open probing. The
            // worker keeps running so a successful probe can resume it.
            failover_drain(own);
            if (stopping_.load(std::memory_order_acquire) &&
                ring_pending_.load(std::memory_order_acquire) == 0) {
                return;
            }
            if (!maybe_probe(own, q)) {
                std::this_thread::sleep_for(config_.probe_interval);
            }
            continue;
        }
        // Gather a chunk without blocking — own ring first, then (when
        // idle) the deepest neighbor past the steal threshold. No
        // batching window: the resident loop launches whatever has
        // accumulated — under load the ring itself is the window (entries
        // pile up while the previous batch solves), and when idle there
        // is nothing to wait for.
        stage_timer st;
        std::vector<detail::pending_ptr> chunk;
        index_type total = 0;
        auto pop_from = [&](shard_lane& lane) {
            detail::pending_ptr entry;
            while (total < config_.max_batch && lane.ring->try_pop(entry)) {
                // in_flight is bumped before pending drops so the drain
                // predicate (pending == 0 && in_flight == 0) never
                // observes this entry in neither counter.
                ring_in_flight_.fetch_add(1, std::memory_order_acq_rel);
                ring_pending_.fetch_sub(1, std::memory_order_acq_rel);
                const auto items = static_cast<size_type>(entry->items);
                ring_systems_.fetch_sub(items, std::memory_order_acq_rel);
                lane.ring_systems.fetch_sub(items,
                                            std::memory_order_relaxed);
                total += entry->items;
                chunk.push_back(std::move(entry));
            }
        };
        pop_from(own);
        if (chunk.empty()) {
            const int victim = steal_victim_ring(shard_id);
            if (victim >= 0) {
                shard_lane& vic =
                    lanes_[static_cast<std::size_t>(victim)];
                pop_from(vic);
                if (!chunk.empty()) {
                    own.steals.fetch_add(1, std::memory_order_relaxed);
                    own.stolen_systems.fetch_add(
                        static_cast<std::uint64_t>(total),
                        std::memory_order_relaxed);
                    for (detail::pending_ptr& entry : chunk) {
                        vic.backlog_ns.fetch_sub(
                            entry->cost_ns, std::memory_order_relaxed);
                        own.backlog_ns.fetch_add(
                            entry->cost_ns, std::memory_order_relaxed);
                        entry->shard = own.id;
                    }
                }
            }
        }
        if (chunk.empty()) {
            if (stopping_.load(std::memory_order_acquire) &&
                ring_pending_.load(std::memory_order_acquire) == 0) {
                return;
            }
            // Idle backoff: a couple of polite yields (the producers are
            // usually mid-submit on the same host), then park on the
            // doorbell futex instead of burning the core in a poll loop
            // — an idle resident worker must cost nothing. The parked
            // registration is seq_cst against the producer's pending
            // increment (serve/doorbell.hpp), so a push between the
            // re-check and the wait is always answered by a bump.
            if (++idle < 4) {
                std::this_thread::yield();
                continue;
            }
            bell_.park([&] {
                return ring_pending_.load(std::memory_order_seq_cst) != 0 ||
                       stopping_.load(std::memory_order_acquire);
            });
            continue;
        }
        idle = 0;
        st.lap(0);  // pop
        const int brownout = brownout_for_depth(
            ring_systems_.load(std::memory_order_acquire));

        // Group the chunk into compatible fused launches. FIFO arrivals
        // of one coalescing key are usually adjacent, so the quadratic
        // sweep stays tiny (chunk is bounded by max_batch systems).
        const bool solo = own.brk.suspended.load(std::memory_order_acquire);
        std::vector<char> taken(chunk.size(), 0);
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            if (taken[i]) {
                continue;
            }
            std::vector<detail::pending_ptr> group;
            group.push_back(std::move(chunk[i]));
            taken[i] = 1;
            index_type gtotal = group.front()->items;
            if (!solo) {
                for (std::size_t j = i + 1; j < chunk.size(); ++j) {
                    if (taken[j] ||
                        gtotal + chunk[j]->items > config_.max_batch) {
                        continue;
                    }
                    if (chunk[j]->key == group.front()->key &&
                        entries_compatible(*group.front(), *chunk[j])) {
                        gtotal += chunk[j]->items;
                        taken[j] = 1;
                        group.push_back(std::move(chunk[j]));
                    }
                }
            }
            const std::size_t popped = group.size();
            st.lap(1);  // group
            try {
                execute(own, q, cache, std::move(group), brownout);
            } catch (...) {
                // execute() resolves tickets individually; see
                // worker_loop for why nothing may escape.
            }
            st.lap(2);  // execute (total)
            ring_in_flight_.fetch_sub(popped, std::memory_order_acq_rel);
        }
    }
}

void solve_service::execute(shard_lane& lane, xpu::queue& q,
                            detail::graph_cache& cache,
                            std::vector<detail::pending_ptr> batch,
                            int brownout)
{
    if (batch.front()->body.index() == 0) {
        execute_typed<double>(lane, q, cache, std::move(batch), brownout);
    } else {
        execute_typed<float>(lane, q, cache, std::move(batch), brownout);
    }
}

/// RAII publisher of this worker's in-flight launch age: the watchdog
/// reads `launch_started_ns` to spot wedged lanes. One slot per lane is
/// enough — any wedged worker pins a nonzero age, and CAS keeps
/// concurrent workers of one lane from clearing each other's stamp.
namespace {
struct launch_age_scope {
    conc::atomic<std::int64_t>& slot;
    std::int64_t stamp = 0;
    launch_age_scope(conc::atomic<std::int64_t>& s, std::int64_t now)
        : slot(s)
    {
        std::int64_t expected = 0;
        if (slot.compare_exchange_strong(expected, now,
                                         std::memory_order_acq_rel)) {
            stamp = now;
        }
    }
    ~launch_age_scope()
    {
        if (stamp != 0) {
            std::int64_t expected = stamp;
            slot.compare_exchange_strong(expected, 0,
                                         std::memory_order_acq_rel);
        }
    }
};
}  // namespace

template <typename T>
void solve_service::execute_typed(shard_lane& lane, xpu::queue& q,
                                  detail::graph_cache& cache,
                                  std::vector<detail::pending_ptr> batch,
                                  int brownout)
{
    stage_timer st;
    const auto launch_time = std::chrono::steady_clock::now();
    launch_age_scope age(lane.launch_started_ns, steady_now_ns());
    std::vector<detail::pending_ptr> live;
    std::vector<detail::pending_ptr> expired;
    for (detail::pending_ptr& entry : batch) {
        (entry->deadline <= launch_time ? expired : live)
            .push_back(std::move(entry));
    }
    for (detail::pending_ptr& entry : expired) {
        reply_without_solving(*entry, request_status::expired);
    }

    // Shape of the live batch, captured before the request matrices move
    // into the replies: the inputs of the modeled-busy-time bookkeeping.
    index_type batch_rows = 0;
    index_type batch_nnz = 0;
    if (!live.empty()) {
        const auto& front =
            std::get<detail::typed_pending<T>>(live.front()->body);
        batch_rows = std::visit([](const auto& m) { return m.rows(); },
                                front.request.a);
        batch_nnz = detail::nnz_per_item<T>(front.request.a);
    }

    // Wake timing: resolution only ever wakes slots a waiter registered
    // on (see reply_slot::resolve). The persistent path additionally
    // defers those wakes to one sweep after the batch is fully resolved —
    // its lock-free admission shrugs off the resulting thundering herd,
    // and each client wakes exactly once per fused window. The windowed
    // path wakes immediately instead: staggered wakeups keep clients
    // refilling the mutex-guarded queue while the worker finishes its
    // bookkeeping, which is what keeps the next window full.
    std::vector<conc::atomic<std::uint32_t>*> wake_list;
    auto* const deferred_wakes =
        launch_mode_ == xpu::launch_mode::persistent ? &wake_list : nullptr;
    std::uint64_t ok_requests = 0;
    std::uint64_t ok_systems = 0;
    std::uint64_t failed = 0;
    std::uint64_t faults = 0;
    std::uint64_t retries = 0;
    std::uint64_t recovered = 0;
    std::uint64_t recorded = 0;
    std::uint64_t replayed = 0;
    std::uint64_t rebound = 0;
    std::uint64_t refined_launches = 0;
    std::uint64_t refine_sweeps_total = 0;
    std::uint64_t refine_fallback_count = 0;
    bool degraded = false;
    index_type total = 0;
    std::vector<index_type> launch_sizes;
    std::vector<double> latencies;

    // Last-resort failure sweep: resolves every still-pending ticket with
    // `failed`. Runs when an exception escapes the solve/scatter path, so
    // a worker never exits leaving unresolved tickets behind, and
    // never double-sets an already-resolved one.
    auto fail_remaining = [&](const std::string& what) {
        for (detail::pending_ptr& entry : live) {
            auto& typed = std::get<detail::typed_pending<T>>(entry->body);
            solve_reply<T> reply;
            reply.status = request_status::failed;
            reply.error = what;
            reply.a = std::move(typed.request.a);
            reply.b = std::move(typed.request.b);
            reply.x = std::move(typed.request.x);
            if (try_reply(typed, std::move(reply), deferred_wakes)) {
                ++failed;
            }
        }
    };

    if (!live.empty()) {
        try {
            std::vector<solver::assembly_part<T>> parts;
            parts.reserve(live.size());
            for (detail::pending_ptr& entry : live) {
                auto& typed =
                    std::get<detail::typed_pending<T>>(entry->body);
                parts.push_back({&typed.request.a, &typed.request.b,
                                 &typed.request.x});
                total += entry->items;
            }
            solver::solve_options opts =
                std::get<detail::typed_pending<T>>(live.front()->body)
                    .request.opts;
            if (config_.skip_spill_zeroing) {
                opts.zero_spill = false;
            }
            // Brownout levels 2/3 trade per-request quality for drain
            // rate (opt-in via `service_config::brownout`; they change
            // numerics, see DESIGN.md §14): level 2 strips refinement
            // down to one sweep, level 3 additionally shortens the GMRES
            // basis. CG/BiCGSTAB requests only feel level 2.
            if (brownout >= 2 && opts.refine_sweeps > 1) {
                opts.refine_sweeps = 1;
            }
            if (brownout >= 3 && opts.gmres_restart > 10) {
                opts.gmres_restart = 10;
            }

            // Graph launch modes solve through a cached recording:
            // rebind + replay when this worker already recorded the
            // (pattern, options, size) shape, record-then-replay on a
            // miss. trsv falls back to the eager path (recording rejects
            // it). One replay is exactly one launch-counter submission,
            // so fault keying and attempt counts match the eager path.
            // Refined batches (refine_sweeps > 0) run the mixed-precision
            // iterative-refinement driver instead of the plain fused
            // solve. They bypass the graph cache: the outer loop issues a
            // convergence-dependent number of inner launches, so there is
            // no single recordable command graph to replay.
            const bool refine =
                opts.refine_sweeps > 0 &&
                opts.solver != solver::solver_type::trsv;
            const bool graph_path =
                launch_mode_ != xpu::launch_mode::direct &&
                opts.solver != solver::solver_type::trsv && !refine;
            const xpu::submit_cost graph_cost =
                launch_mode_ == xpu::launch_mode::persistent
                    ? xpu::submit_cost::resident
                    : xpu::submit_cost::replay;
            const std::uint64_t batch_key = live.front()->key;
            auto solve_with_graph =
                [&](const std::vector<solver::assembly_part<T>>& p,
                    index_type p_items) -> solver::solve_result {
                auto& slots = cache.template slots<T>();
                detail::graph_cache::slot<T>* hit = nullptr;
                for (auto& s : slots) {
                    if (s.key == batch_key && s.items == p_items &&
                        s.rec && s.rec->compatible(p, opts)) {
                        hit = &s;
                        break;
                    }
                }
                if (hit) {
                    hit->rec->rebind(p);
                    ++rebound;
                } else {
                    // Record first, then pick the victim slot: a throwing
                    // record leaves the cache unchanged. Invalidated
                    // recordings are the preferred victims.
                    auto rec =
                        solver::recorded_solve<T>::record(q, p, opts);
                    ++recorded;
                    detail::graph_cache::slot<T>* victim = nullptr;
                    for (auto& s : slots) {
                        if (!s.rec || !s.rec->valid()) {
                            victim = &s;
                            break;
                        }
                    }
                    if (!victim &&
                        slots.size() < config_.graph_cache_entries) {
                        slots.emplace_back();
                        victim = &slots.back();
                    }
                    if (!victim) {
                        victim = &*std::min_element(
                            slots.begin(), slots.end(),
                            [](const auto& lhs, const auto& rhs) {
                                return lhs.last_use < rhs.last_use;
                            });
                    }
                    victim->key = batch_key;
                    victim->items = p_items;
                    victim->rec = std::move(rec);
                    hit = victim;
                }
                hit->last_use = ++cache.tick;
                ++replayed;
                double wall = 0.0;
                try {
                    wall = hit->rec->replay(q, graph_cost);
                } catch (const xpu::device_error&) {
                    // Never replay a poisoned graph: drop the recording
                    // so the retry re-records from scratch.
                    hit->rec->invalidate();
                    throw;
                }
                hit->rec->scatter(p);
                solver::solve_result result;
                result.log = hit->rec->log();
                result.plan = hit->rec->plan();
                result.config = hit->rec->config();
                result.wall_seconds = wall;
                return result;
            };

            // Solves `p`, retrying device faults with capped exponential
            // backoff. Injected faults are keyed by the worker queue's
            // launch counter, so every retry is a fresh launch. Other
            // exceptions propagate to the failure sweep below.
            std::string last_fault;
            auto attempt_with_retries =
                [&](const std::vector<solver::assembly_part<T>>& p,
                    index_type p_items, index_type& attempts)
                -> std::optional<solver::solve_result> {
                auto backoff = config_.retry_backoff;
                for (index_type retry = 0;; ++retry) {
                    ++attempts;
                    try {
                        if (refine) {
                            solver::refine_options ropts;
                            ropts.max_sweeps = opts.refine_sweeps;
                            solver::refined_result rr =
                                solver::solve_refined_coalesced<T>(
                                    q, p, opts, ropts);
                            ++refined_launches;
                            refine_sweeps_total +=
                                static_cast<std::uint64_t>(rr.sweeps);
                            if (rr.fell_back) {
                                ++refine_fallback_count;
                            }
                            solver::solve_result result;
                            result.log = std::move(rr.log);
                            result.stats = rr.stats;
                            result.wall_seconds = rr.wall_seconds;
                            return result;
                        }
                        return graph_path
                                   ? solve_with_graph(p, p_items)
                                   : solver::solve_coalesced<T>(q, p,
                                                                opts);
                    } catch (const xpu::device_error& ex) {
                        ++faults;
                        last_fault = ex.what();
                        if (retry >= config_.launch_retries) {
                            return std::nullopt;
                        }
                        ++retries;
                        if (backoff.count() > 0) {
                            std::this_thread::sleep_for(backoff);
                            backoff = std::min(
                                backoff * 2, config_.max_retry_backoff);
                        }
                    }
                }
            };

            index_type fused_attempts = 0;
            st.lap(3);  // split + parts build
            std::optional<solver::solve_result> combined =
                attempt_with_retries(parts, total, fused_attempts);
            st.lap(4);  // solve (rebind+replay or eager)
            if (combined) {
                if (config_.failover) {
                    lane.consecutive_exhausted.store(
                        0, std::memory_order_relaxed);
                }
                const auto done = std::chrono::steady_clock::now();
                launch_sizes.push_back(total);
                index_type offset = 0;
                for (detail::pending_ptr& entry : live) {
                    auto& typed =
                        std::get<detail::typed_pending<T>>(entry->body);
                    solve_reply<T> reply;
                    reply.status = request_status::ok;
                    reply.a = std::move(typed.request.a);
                    reply.b = std::move(typed.request.b);
                    reply.x = std::move(typed.request.x);
                    reply.log = std::move(typed.request.log);
                    solver::split_log_into(combined->log, offset,
                                           entry->items, reply.log);
                    reply.fused_systems = total;
                    reply.attempts = fused_attempts;
                    reply.queue_seconds =
                        seconds_between(entry->enqueued, launch_time);
                    reply.solve_seconds = combined->wall_seconds;
                    offset += entry->items;
                    latencies.push_back(
                        seconds_between(entry->enqueued, done));
                    try_reply(typed, std::move(reply), deferred_wakes);
                    ++ok_requests;
                    ok_systems += static_cast<std::uint64_t>(entry->items);
                    if (fused_attempts > 1) {
                        ++recovered;
                    }
                }
            } else if (config_.failover &&
                       alive_lanes_excluding(lane.id) > 0 &&
                       lane.consecutive_exhausted.fetch_add(
                           1, std::memory_order_acq_rel) +
                               1 >=
                           static_cast<std::uint32_t>(
                               config_.evict_after_exhausted) &&
                       (evict_lane(lane, /*by_watchdog=*/false) ||
                        !lane.guard.available())) {
                // Retry exhaustion with failover on and somewhere to go:
                // declare the lane lost instead of grinding through solo
                // degradation on a device that keeps faulting. The
                // batch's entries migrate to survivors (their tickets
                // resolve over there), and everything still queued
                // behind them drains right after. `evict_lane` may lose
                // the CAS to the watchdog — the lane is equally dead
                // either way, so the migration proceeds.
                for (detail::pending_ptr& entry : live) {
                    lane.backlog_ns.fetch_sub(entry->cost_ns,
                                              std::memory_order_relaxed);
                    migrate_entry(lane, std::move(entry));
                }
                live.clear();
                failover_drain(lane);
            } else {
                // The fused launch keeps faulting: degrade to per-request
                // solo solves so only the requests that genuinely cannot
                // complete fail — the rest of the batch still resolves ok.
                degraded = true;
                for (detail::pending_ptr& entry : live) {
                    auto& typed =
                        std::get<detail::typed_pending<T>>(entry->body);
                    std::vector<solver::assembly_part<T>> solo;
                    solo.push_back({&typed.request.a, &typed.request.b,
                                    &typed.request.x});
                    index_type attempts = fused_attempts;
                    std::optional<solver::solve_result> result =
                        attempt_with_retries(solo, entry->items, attempts);
                    const auto done = std::chrono::steady_clock::now();
                    solve_reply<T> reply;
                    reply.attempts = attempts;
                    if (result) {
                        reply.status = request_status::ok;
                        reply.log = result->log;
                        reply.fused_systems = entry->items;
                        reply.queue_seconds =
                            seconds_between(entry->enqueued, launch_time);
                        reply.solve_seconds = result->wall_seconds;
                        launch_sizes.push_back(entry->items);
                        latencies.push_back(
                            seconds_between(entry->enqueued, done));
                    } else {
                        reply.status = request_status::failed;
                        reply.error =
                            "device fault persisted through " +
                            std::to_string(attempts) +
                            " solve attempts: " + last_fault;
                    }
                    reply.a = std::move(typed.request.a);
                    reply.b = std::move(typed.request.b);
                    reply.x = std::move(typed.request.x);
                    const bool ok = reply.status == request_status::ok;
                    try_reply(typed, std::move(reply), deferred_wakes);
                    if (ok) {
                        ++ok_requests;
                        ok_systems +=
                            static_cast<std::uint64_t>(entry->items);
                        ++recovered;
                    } else {
                        ++failed;
                    }
                }
            }
        } catch (const std::exception& ex) {
            fail_remaining(ex.what());
        } catch (...) {
            fail_remaining("unknown error in batch execution");
        }
    }
    st.lap(5);  // reply scatter (split_log + moves + try_reply)

    // Retire the batch's routed cost from the lane backlog (atomic, so
    // the router's lock-free reads stay consistent without the mutex).
    {
        std::int64_t retired = 0;
        for (const detail::pending_ptr& entry : expired) {
            retired += entry->cost_ns;
        }
        for (const detail::pending_ptr& entry : live) {
            retired += entry->cost_ns;
        }
        if (retired != 0) {
            lane.backlog_ns.fetch_sub(retired, std::memory_order_relaxed);
        }
    }

    {
        std::lock_guard<std::mutex> lk(mu_);
        expired_requests_.fetch_add(
            static_cast<std::uint64_t>(expired.size()),
            std::memory_order_relaxed);
        completed_requests_ += ok_requests;
        completed_systems_ += ok_systems;
        failed_requests_.fetch_add(failed, std::memory_order_relaxed);
        launch_faults_ += faults;
        launch_retries_ += retries;
        recovered_requests_ += recovered;
        launches_recorded_ += recorded;
        replays_ += replayed;
        rebind_only_ += rebound;
        refined_batches_ += refined_launches;
        refine_sweeps_ += refine_sweeps_total;
        refine_fallbacks_ += refine_fallback_count;
        if (degraded) {
            ++degraded_launches_;
        }
        // Brownout telemetry (all writers hold mu_ here, so plain
        // load/store is race-free; the fields stay atomic for the
        // lock-free readers in stats()).
        brownout_level_.store(static_cast<std::uint32_t>(brownout),
                              std::memory_order_relaxed);
        if (brownout > 0) {
            brownout_batches_.fetch_add(1, std::memory_order_relaxed);
            if (brownout_max_.load(std::memory_order_relaxed) <
                static_cast<std::uint32_t>(brownout)) {
                brownout_max_.store(static_cast<std::uint32_t>(brownout),
                                    std::memory_order_relaxed);
            }
        }
        lane.completed_systems += ok_systems;
        lane.launch_faults += faults;
        for (const index_type size : launch_sizes) {
            ++batches_launched_;
            batched_systems_sum_ += static_cast<std::uint64_t>(size);
            const std::size_t bucket =
                size <= config_.max_batch ? static_cast<std::size_t>(size) : 0;
            ++batch_histogram_[bucket];
            ++lane.batches_launched;
            // Modeled device-busy time of the launch that actually ran
            // (fused size, this lane's device): the scaling signal of the
            // shard sweep on a host whose single core serializes shards.
            lane.modeled_busy_ns +=
                static_cast<std::uint64_t>(shard::router::estimate_cost_ns(
                    lane.spec, size, batch_rows, batch_nnz));
        }
        for (const double s : latencies) {
            latency_.record(s);
        }
        if (!live.empty()) {
            // Per-shard breaker bookkeeping: one observation per
            // execution, faulted if any attempt faulted. A tripped shard
            // cools down alone; its neighbors keep coalescing.
            lane.brk.observe(faults > 0, config_.breaker_fault_ratio,
                             config_.breaker_window,
                             config_.breaker_cooldown);
        }
    }
    st.lap(6);  // stats lock

    // Deferred wake sweep: every entry of the batch is resolved by now,
    // so a client blocked on its first fused request wakes once and
    // drains its whole window without another sleep. Only slots a waiter
    // actually parked on are in the list, so the sweep issues exactly
    // one syscall per sleeping client, not one per request.
    for (conc::atomic<std::uint32_t>* word : wake_list) {
        detail::futex_wake_all(*word);
    }
    st.lap(7);  // wake sweep
    g_stage_probe.batches.fetch_add(1, std::memory_order_relaxed);
}

template void solve_service::execute_typed<double>(
    shard_lane&, xpu::queue&, detail::graph_cache&,
    std::vector<detail::pending_ptr>, int);
template void solve_service::execute_typed<float>(
    shard_lane&, xpu::queue&, detail::graph_cache&,
    std::vector<detail::pending_ptr>, int);

}  // namespace batchlin::serve
