#include "solver/dispatch.hpp"

#include "solver/instantiate.hpp"
#include "solver/run_decl.hpp"
#include "solver/trsv.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace batchlin::solver {

// The kernels are explicitly instantiated in the per-solver translation
// units (including the double-over-fp32 mixed TUs); declare those
// instantiations so this file stays cheap to compile.
#define BATCHLIN_EXTERN_CG(T, S, MatBatch, ...) \
    extern BATCHLIN_INSTANTIATE_CG(T, S, MatBatch, __VA_ARGS__)
#define BATCHLIN_EXTERN_BICGSTAB(T, S, MatBatch, ...) \
    extern BATCHLIN_INSTANTIATE_BICGSTAB(T, S, MatBatch, __VA_ARGS__)
#define BATCHLIN_EXTERN_GMRES(T, S, MatBatch, ...) \
    extern BATCHLIN_INSTANTIATE_GMRES(T, S, MatBatch, __VA_ARGS__)
#define BATCHLIN_EXTERN_RICHARDSON(T, S, MatBatch, ...) \
    extern BATCHLIN_INSTANTIATE_RICHARDSON(T, S, MatBatch, __VA_ARGS__)

BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_CG, float, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_CG, double, double)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_CG, double, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_BICGSTAB, float, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_BICGSTAB, double, double)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_BICGSTAB, double, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_GMRES, float, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_GMRES, double, double)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_GMRES, double, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_RICHARDSON, float, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_RICHARDSON, double, double)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_RICHARDSON, double, float)

std::string to_string(matrix_format f)
{
    switch (f) {
    case matrix_format::dense:
        return "BatchDense";
    case matrix_format::csr:
        return "BatchCsr";
    case matrix_format::ell:
        return "BatchEll";
    }
    return "?";
}

namespace {

/// nnz used for preconditioner-workspace sizing, per format.
template <typename T>
index_type pattern_nnz(const batch_matrix<T>& a)
{
    if (const auto* csr = std::get_if<mat::batch_csr<T>>(&a)) {
        return csr->nnz();
    }
    if (const auto* ell = std::get_if<mat::batch_ell<T>>(&a)) {
        return ell->rows() * ell->ell_width();
    }
    const auto& dense = std::get<mat::batch_dense<T>>(a);
    return static_cast<index_type>(dense.item_size());
}

template <typename T>
index_type rows_of(const batch_matrix<T>& a)
{
    return std::visit([](const auto& m) { return m.rows(); }, a);
}

template <typename T>
index_type items_of(const batch_matrix<T>& a)
{
    return std::visit([](const auto& m) { return m.num_batch_items(); }, a);
}

template <typename T>
mat::storage_precision storage_of(const batch_matrix<T>& a)
{
    return std::visit([](const auto& m) { return m.storage_mode(); }, a);
}

template <typename T, typename S>
size_type precond_workspace(precond::type p, index_type rows,
                            index_type nnz, index_type block_size)
{
    switch (p) {
    case precond::type::none:
        return precond::identity<T, S>::workspace_elems(rows, nnz);
    case precond::type::jacobi:
        return precond::jacobi<T, S>::workspace_elems(rows, nnz);
    case precond::type::ilu:
        return precond::ilu0<T, S>::workspace_elems(rows, nnz);
    case precond::type::isai:
        return precond::isai<T, S>::workspace_elems(rows, nnz);
    case precond::type::block_jacobi:
        return precond::block_jacobi<T, S>::workspace_elems(rows, nnz,
                                                            block_size);
    }
    return 0;
}

/// Level 3 of the dispatch: the solver axis, with format and
/// preconditioner already resolved to concrete types. S is the storage
/// type the kernels read matrix/preconditioner payloads at.
template <typename T, typename S, typename MatBatch, typename Precond>
void dispatch_solver(xpu::queue& q, const MatBatch& a, const Precond& pc,
                     const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                     const solve_options& opts, const slm_plan& plan,
                     const kernel_config& config, log::batch_log& logger,
                     xpu::batch_range range)
{
    switch (opts.solver) {
    case solver_type::cg:
        run_cg<T, MatBatch, Precond, S>(q, a, pc, b, x, opts.criterion,
                                        plan, config, logger, range);
        return;
    case solver_type::bicgstab:
        run_bicgstab<T, MatBatch, Precond, S>(q, a, pc, b, x,
                                              opts.criterion, plan, config,
                                              logger, range);
        return;
    case solver_type::gmres:
        run_gmres<T, MatBatch, Precond, S>(q, a, pc, b, x, opts.criterion,
                                           plan, config, opts.gmres_restart,
                                           logger, range);
        return;
    case solver_type::richardson:
        run_richardson<T, MatBatch, Precond, S>(
            q, a, pc, b, x, opts.criterion, plan, config,
            static_cast<T>(opts.richardson_relaxation), logger, range);
        return;
    case solver_type::trsv:
        BATCHLIN_UNSUPPORTED("BatchTrsv is dispatched separately");
    }
}

/// Level 2 of the dispatch: the preconditioner axis. The `if constexpr`
/// guards keep illegal combinations (Table 3) from ever instantiating.
template <typename T, typename S, typename MatBatch>
void dispatch_precond(xpu::queue& q, const MatBatch& a,
                      const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                      const solve_options& opts, const slm_plan& plan,
                      const kernel_config& config, log::batch_log& logger,
                      xpu::batch_range range)
{
    constexpr bool is_csr =
        std::is_same_v<MatBatch, mat::batch_csr<T>>;
    switch (opts.preconditioner) {
    case precond::type::none:
        dispatch_solver<T, S>(q, a, precond::identity<T, S>{}, b, x, opts,
                              plan, config, logger, range);
        return;
    case precond::type::jacobi:
        if constexpr (is_csr) {
            dispatch_solver<T, S>(q, a, precond::jacobi<T, S>(a), b, x,
                                  opts, plan, config, logger, range);
        } else {
            dispatch_solver<T, S>(q, a, precond::jacobi<T, S>{}, b, x,
                                  opts, plan, config, logger, range);
        }
        return;
    case precond::type::ilu:
        if constexpr (is_csr) {
            dispatch_solver<T, S>(q, a, precond::ilu0<T, S>(a), b, x, opts,
                                  plan, config, logger, range);
            return;
        }
        BATCHLIN_UNSUPPORTED("BatchIlu requires the BatchCsr format");
    case precond::type::isai:
        if constexpr (is_csr) {
            dispatch_solver<T, S>(q, a, precond::isai<T, S>(a), b, x, opts,
                                  plan, config, logger, range);
            return;
        }
        BATCHLIN_UNSUPPORTED("BatchIsai requires the BatchCsr format");
    case precond::type::block_jacobi:
        if constexpr (is_csr) {
            dispatch_solver<T, S>(
                q, a,
                precond::block_jacobi<T, S>(a, opts.block_jacobi_size), b,
                x, opts, plan, config, logger, range);
            return;
        }
        BATCHLIN_UNSUPPORTED(
            "BatchBlockJacobi requires the BatchCsr format");
    }
}

}  // namespace

template <typename T>
solve_result solve_range(xpu::queue& q, const batch_matrix<T>& a,
                         const mat::batch_dense<T>& b,
                         mat::batch_dense<T>& x, const solve_options& opts,
                         xpu::batch_range range)
{
    opts.criterion.validate();
    const index_type items = items_of(a);
    const index_type rows = rows_of(a);
    BATCHLIN_ENSURE_DIMS(b.num_batch_items() == items &&
                             x.num_batch_items() == items,
                         "batch sizes of A, b, x must match");
    BATCHLIN_ENSURE_DIMS(b.rows() == rows && x.rows() == rows,
                         "vector lengths must match the matrix order");
    BATCHLIN_ENSURE_DIMS(b.cols() == 1 && x.cols() == 1,
                         "batched solve expects single right-hand sides");
    BATCHLIN_ENSURE_DIMS(range.begin >= 0 && range.end <= items &&
                             range.begin <= range.end,
                         "batch range out of bounds");

    solve_result result;
    result.log = log::batch_log(items);
    if (opts.record_history) {
        result.log.enable_history(opts.criterion.max_iterations);
    }
    const index_type nnz = pattern_nnz(a);
    const xpu::reduce_path* reduction_override =
        opts.reduction ? &*opts.reduction : nullptr;
    result.config = choose_launch_config(q.policy(), rows,
                                         opts.sub_group_size,
                                         reduction_override);

    // Storage axis: what the caller asked for vs what the matrix holds.
    // A matrix already compressed to fp32 is honored as stored (its native
    // bits are gone); a native matrix under an fp32 request is compressed
    // into a temporary copy below — a convenience for env-driven sweeps,
    // while hot paths (solve_refined, serve) pre-convert once and reuse.
    const mat::storage_precision actual = storage_of(a);
    mat::storage_precision eff = mat::effective_storage<T>(opts.storage);
    if (actual == mat::storage_precision::fp32) {
        eff = mat::storage_precision::fp32;
    }

    if (opts.solver == solver_type::trsv) {
        BATCHLIN_ENSURE_MSG(
            std::holds_alternative<mat::batch_csr<T>>(a),
            "BatchTrsv requires the BatchCsr format");
        BATCHLIN_ENSURE_MSG(opts.preconditioner == precond::type::none,
                            "BatchTrsv is a direct solve and takes no "
                            "preconditioner");
        // The triangular direct solve has no refinement loop to recover
        // narrowed bits, so it only accepts native storage.
        BATCHLIN_ENSURE_MSG(actual == mat::storage_precision::native,
                            "BatchTrsv requires native storage");
        result.plan =
            plan_workspace(solver_type::trsv, rows, nnz, 0,
                           q.policy().slm_bytes_per_group, sizeof(T),
                           opts.gmres_restart, opts.slm);
        result.plan.zero_spill = opts.zero_spill;
        wall_timer timer;
        run_trsv<T>(q, std::get<mat::batch_csr<T>>(a), b, x,
                    opts.trsv_triangle, result.plan, result.config,
                    result.log, range);
        result.wall_seconds = timer.seconds();
        result.stats = q.last_launch_stats();
        return result;
    }

    const bool compressed = eff == mat::storage_precision::fp32;
    // fp32 payloads pack into half the workspace slots, so the planner
    // sees the smaller footprint and fits more preconditioners into SLM.
    const size_type pc_elems =
        compressed ? precond_workspace<T, float>(opts.preconditioner, rows,
                                                 nnz, opts.block_jacobi_size)
                   : precond_workspace<T, T>(opts.preconditioner, rows, nnz,
                                             opts.block_jacobi_size);
    result.plan = plan_workspace(opts.solver, rows, nnz, pc_elems,
                                 q.policy().slm_bytes_per_group, sizeof(T),
                                 opts.gmres_restart, opts.slm);
    result.plan.zero_spill = opts.zero_spill;

    wall_timer timer;
    // Level 1 of the dispatch: the format axis (plus the storage axis
    // resolved above).
    const auto launch = [&](const batch_matrix<T>& mat_ref) {
        std::visit(
            [&](const auto& concrete) {
                if (compressed) {
                    dispatch_precond<T, float>(q, concrete, b, x, opts,
                                               result.plan, result.config,
                                               result.log, range);
                } else {
                    dispatch_precond<T, T>(q, concrete, b, x, opts,
                                           result.plan, result.config,
                                           result.log, range);
                }
            },
            mat_ref);
    };
    if (compressed && actual == mat::storage_precision::native) {
        batch_matrix<T> tmp = a;
        std::visit(
            [](auto& m) {
                m.set_storage_precision(mat::storage_precision::fp32);
            },
            tmp);
        launch(tmp);
    } else {
        launch(a);
    }
    result.wall_seconds = timer.seconds();
    result.stats = q.last_launch_stats();
    return result;
}

template <typename T>
solve_result solve(xpu::queue& q, const batch_matrix<T>& a,
                   const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                   const solve_options& opts)
{
    return solve_range(q, a, b, x, opts, {0, items_of(a)});
}

#define BATCHLIN_INSTANTIATE_DISPATCH(T)                                    \
    template solve_result solve<T>(xpu::queue&, const batch_matrix<T>&,     \
                                   const mat::batch_dense<T>&,              \
                                   mat::batch_dense<T>&,                    \
                                   const solve_options&);                   \
    template solve_result solve_range<T>(                                   \
        xpu::queue&, const batch_matrix<T>&, const mat::batch_dense<T>&,    \
        mat::batch_dense<T>&, const solve_options&, xpu::batch_range)

BATCHLIN_INSTANTIATE_DISPATCH(float);
BATCHLIN_INSTANTIATE_DISPATCH(double);

}  // namespace batchlin::solver
