#ifdef BATCHLIN_XPU_CHECK

#include "xpu/check.hpp"

#include <algorithm>
#include <sstream>

namespace batchlin::xpu::check {

std::string to_string(diagnostic kind)
{
    switch (kind) {
    case diagnostic::uninitialized_read: return "uninitialized_read";
    case diagnostic::out_of_bounds: return "out_of_bounds";
    case diagnostic::use_after_reset: return "use_after_reset";
    case diagnostic::phase_race: return "phase_race";
    case diagnostic::nonuniform_collective: return "nonuniform_collective";
    case diagnostic::lane_order_dependence: return "lane_order_dependence";
    }
    return "unknown";
}

namespace {

void append_lane(std::ostream& os, index_type lane)
{
    if (lane == uniform_lane) {
        os << "uniform";
    } else {
        os << lane;
    }
}

}  // namespace

std::string describe(const violation& v)
{
    std::ostringstream os;
    os << to_string(v.kind) << " in kernel '" << v.kernel << "'";
    if (v.group >= 0) {
        os << " group " << v.group;
    }
    if (v.phase >= 0) {
        os << " phase " << v.phase;
    }
    if (v.lane_a != uniform_lane || v.lane_b != uniform_lane ||
        v.kind == diagnostic::phase_race ||
        v.kind == diagnostic::nonuniform_collective) {
        os << " lanes ";
        append_lane(os, v.lane_a);
        os << "/";
        append_lane(os, v.lane_b);
    }
    if (v.byte_end > v.byte_begin) {
        os << " bytes [" << v.byte_begin << "," << v.byte_end << ")";
    }
    if (!v.detail.empty()) {
        os << ": " << v.detail;
    }
    return os.str();
}

void group_checker::begin_group(index_type group_id,
                                index_type work_group_size)
{
    group_ = group_id;
    wg_size_ = work_group_size;
    phase_ = 0;
    lane_ = uniform_lane;
    regions_.clear();
    reads_.clear();
    writes_.clear();
}

span_tag group_checker::register_slm_region(size_type bytes)
{
    region_info info;
    info.bytes = bytes;
    info.is_slm = true;
    info.shadow.assign(static_cast<std::size_t>(bytes), 0);
    regions_.push_back(std::move(info));
    return {this, static_cast<index_type>(regions_.size()) - 1, 0};
}

span_tag group_checker::register_global_region(size_type bytes,
                                               bool initially_defined)
{
    region_info info;
    info.bytes = bytes;
    info.is_slm = false;
    if (!initially_defined) {
        info.shadow.assign(static_cast<std::size_t>(bytes), 0);
    }
    regions_.push_back(std::move(info));
    return {this, static_cast<index_type>(regions_.size()) - 1, 0};
}

void group_checker::on_slm_reset()
{
    for (region_info& r : regions_) {
        if (r.is_slm) {
            r.dead = true;
        }
    }
}

void group_checker::on_access(index_type region, size_type offset,
                              size_type bytes, bool is_write)
{
    region_info& r = regions_[static_cast<std::size_t>(region)];
    if (r.dead) {
        throw_violation(diagnostic::use_after_reset, lane_, uniform_lane,
                        offset, offset + bytes,
                        "access through a span of an SLM allocation released "
                        "by slm_arena::reset()");
    }
    if (!r.shadow.empty()) {
        unsigned char* shadow = r.shadow.data() + offset;
        if (is_write) {
            std::fill_n(shadow, static_cast<std::size_t>(bytes),
                        static_cast<unsigned char>(1));
        } else {
            for (size_type b = 0; b < bytes; ++b) {
                if (shadow[b] == 0) {
                    throw_violation(
                        diagnostic::uninitialized_read, lane_, uniform_lane,
                        offset, offset + bytes,
                        r.is_slm
                            ? "read of SLM bytes never written by this group"
                            : "read of spill-scratch bytes never written by "
                              "this group (zero_spill is off)");
                }
            }
        }
    }
    if (level_ >= check_level::hazard) {
        access_record rec{region, offset, offset + bytes, lane_};
        if (is_write) {
            writes_.push_back(rec);
        } else {
            reads_.push_back(rec);
        }
    }
}

void group_checker::fail_out_of_bounds(index_type region,
                                       size_type span_offset, index_type i,
                                       index_type len, size_type elem_bytes)
{
    const size_type begin =
        span_offset + static_cast<size_type>(i) * elem_bytes;
    throw_violation(diagnostic::out_of_bounds, lane_, uniform_lane, begin,
                    begin + elem_bytes,
                    "index " + std::to_string(i) + " outside span of length " +
                        std::to_string(len) + " (allocation #" +
                        std::to_string(region) + ")");
}

void group_checker::require_uniform(const char* what)
{
    if (lane_ != uniform_lane) {
        throw_violation(diagnostic::nonuniform_collective, lane_,
                        uniform_lane, 0, 0,
                        std::string(what) +
                            " invoked from inside a per-lane region; "
                            "barriers and collectives must be invoked "
                            "uniformly by the whole work-group");
    }
}

void group_checker::throw_violation(diagnostic kind, index_type lane_a,
                                    index_type lane_b, size_type byte_begin,
                                    size_type byte_end,
                                    std::string detail) const
{
    violation v;
    v.kind = kind;
    v.kernel = kernel_;
    v.group = group_;
    v.phase = phase_;
    v.lane_a = lane_a;
    v.lane_b = lane_b;
    v.byte_begin = byte_begin;
    v.byte_end = byte_end;
    v.detail = std::move(detail);
    throw check_violation(std::move(v));
}

void group_checker::finish_phase()
{
    if (level_ >= check_level::hazard && !writes_.empty()) {
        scan_conflicts();
    }
    reads_.clear();
    writes_.clear();
    ++phase_;
}

void group_checker::scan_conflicts()
{
    std::sort(writes_.begin(), writes_.end(),
              [](const access_record& a, const access_record& b) {
                  return a.region != b.region ? a.region < b.region
                                              : a.begin < b.begin;
              });
    // Write-write: sweep against the max-end record of the sorted prefix.
    // If any conflicting pair exists, at least one is caught (the sweep is
    // complete for first-failure reporting), and we fail fast anyway.
    const access_record* open = nullptr;
    for (const access_record& w : writes_) {
        if (open != nullptr && open->region == w.region &&
            w.begin < open->end) {
            if (open->lane != w.lane) {
                throw_violation(
                    diagnostic::phase_race, open->lane, w.lane, w.begin,
                    std::min(open->end, w.end),
                    "cross-lane write-write overlap within one barrier "
                    "phase");
            }
            if (w.end > open->end) {
                open = &w;
            }
        } else {
            open = &w;
        }
    }
    // Read-write: every read against the writes of its region. Writes are
    // sorted by begin, so the scan stops at the first write past the read.
    for (const access_record& r : reads_) {
        auto lo = std::lower_bound(
            writes_.begin(), writes_.end(), r.region,
            [](const access_record& w, index_type region) {
                return w.region < region;
            });
        for (auto it = lo;
             it != writes_.end() && it->region == r.region &&
             it->begin < r.end;
             ++it) {
            if (it->end > r.begin && it->lane != r.lane) {
                throw_violation(diagnostic::phase_race, r.lane, it->lane,
                                std::max(r.begin, it->begin),
                                std::min(r.end, it->end),
                                "cross-lane read-write overlap within one "
                                "barrier phase");
            }
        }
    }
}

void group_checker::prepare_lane_order(index_type work_group_size)
{
    lane_order_buf_.resize(static_cast<std::size_t>(work_group_size));
    for (index_type k = 0; k < work_group_size; ++k) {
        lane_order_buf_[static_cast<std::size_t>(k)] = k;
    }
    if (level_ < check_level::adversary) {
        return;
    }
    switch (order_) {
    case lane_order::ascending:
        break;
    case lane_order::reversed:
        std::reverse(lane_order_buf_.begin(), lane_order_buf_.end());
        break;
    case lane_order::shuffled: {
        // splitmix64 keyed by (seed, group, phase): every phase of every
        // group draws a distinct permutation, reproducibly.
        std::uint64_t state = (static_cast<std::uint64_t>(seed_) << 32) ^
                              (static_cast<std::uint64_t>(
                                   static_cast<std::uint32_t>(group_))
                               << 16) ^
                              static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(phase_));
        auto next = [&state]() {
            state += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = state;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            return z ^ (z >> 31);
        };
        for (index_type k = work_group_size - 1; k > 0; --k) {
            const index_type j = static_cast<index_type>(
                next() % static_cast<std::uint64_t>(k + 1));
            std::swap(lane_order_buf_[static_cast<std::size_t>(k)],
                      lane_order_buf_[static_cast<std::size_t>(j)]);
        }
        break;
    }
    }
}

}  // namespace batchlin::xpu::check

#else

// Checked mode compiled out: keep the translation unit non-empty.
namespace batchlin::xpu::check {
void unused_in_unchecked_builds() {}
}  // namespace batchlin::xpu::check

#endif  // BATCHLIN_XPU_CHECK
