#include "workload/stencil.hpp"

#include "util/rng.hpp"

namespace batchlin::work {

template <typename T>
mat::batch_csr<T> stencil_3pt(index_type num_items, index_type rows,
                              std::uint64_t seed)
{
    BATCHLIN_ENSURE_MSG(rows >= 2, "stencil needs at least two rows");
    std::vector<index_type> row_ptrs(rows + 1);
    std::vector<index_type> col_idxs;
    col_idxs.reserve(static_cast<std::size_t>(3) * rows - 2);
    row_ptrs[0] = 0;
    for (index_type i = 0; i < rows; ++i) {
        if (i > 0) {
            col_idxs.push_back(i - 1);
        }
        col_idxs.push_back(i);
        if (i < rows - 1) {
            col_idxs.push_back(i + 1);
        }
        row_ptrs[i + 1] = static_cast<index_type>(col_idxs.size());
    }
    mat::batch_csr<T> a(num_items, rows, rows, std::move(row_ptrs),
                        std::move(col_idxs));
    rng gen(seed);
    for (index_type b = 0; b < num_items; ++b) {
        // Per-item diagonal shift in [0.2, 0.7): keeps every item SPD and
        // distinct (same role as the paper's per-cell system variation)
        // while bounding the condition number away from the O(n^2) growth
        // of the pure stencil, so iteration counts stay nearly flat across
        // matrix sizes and the runtime scaling of Fig. 4 is solver-work
        // driven, as in the paper.
        const T shift = static_cast<T>(gen.uniform(0.2, 0.7));
        T* vals = a.item_values(b);
        for (index_type i = 0; i < rows; ++i) {
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                vals[k] = a.col_idxs()[k] == i ? T{2} + shift : T{-1};
            }
        }
    }
    return a;
}

template <typename T>
mat::batch_csr<T> stencil_banded(index_type num_items, index_type rows,
                                 index_type bandwidth, std::uint64_t seed)
{
    BATCHLIN_ENSURE_MSG(bandwidth >= 1 && bandwidth < rows,
                        "bandwidth must be in [1, rows)");
    std::vector<index_type> row_ptrs(rows + 1);
    std::vector<index_type> col_idxs;
    row_ptrs[0] = 0;
    for (index_type i = 0; i < rows; ++i) {
        const index_type lo = std::max<index_type>(0, i - bandwidth);
        const index_type hi = std::min<index_type>(rows - 1, i + bandwidth);
        for (index_type j = lo; j <= hi; ++j) {
            col_idxs.push_back(j);
        }
        row_ptrs[i + 1] = static_cast<index_type>(col_idxs.size());
    }
    mat::batch_csr<T> a(num_items, rows, rows, std::move(row_ptrs),
                        std::move(col_idxs));
    rng gen(seed);
    for (index_type b = 0; b < num_items; ++b) {
        const T shift = static_cast<T>(gen.uniform(0.2, 0.7));
        T* vals = a.item_values(b);
        for (index_type i = 0; i < rows; ++i) {
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                vals[k] = a.col_idxs()[k] == i
                              ? static_cast<T>(2 * bandwidth) + shift
                              : T{-1};
            }
        }
    }
    return a;
}

template <typename T>
mat::batch_dense<T> random_rhs(index_type num_items, index_type rows,
                               std::uint64_t seed)
{
    mat::batch_dense<T> b(num_items, rows, 1);
    rng gen(seed);
    for (T& v : b.values()) {
        v = static_cast<T>(gen.uniform(0.5, 1.5));
    }
    return b;
}

template <typename T>
mat::batch_dense<T> rhs_for_unit_solution(const mat::batch_csr<T>& a)
{
    mat::batch_dense<T> b(a.num_batch_items(), a.rows(), 1);
    for (index_type item = 0; item < a.num_batch_items(); ++item) {
        const T* vals = a.item_values(item);
        for (index_type i = 0; i < a.rows(); ++i) {
            T sum{};
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                sum += vals[k];
            }
            b.at(item, i, 0) = sum;
        }
    }
    return b;
}

#define BATCHLIN_INSTANTIATE_STENCIL(T)                                    \
    template mat::batch_csr<T> stencil_3pt<T>(index_type, index_type,      \
                                              std::uint64_t);              \
    template mat::batch_csr<T> stencil_banded<T>(                          \
        index_type, index_type, index_type, std::uint64_t);                \
    template mat::batch_dense<T> random_rhs<T>(index_type, index_type,     \
                                               std::uint64_t);             \
    template mat::batch_dense<T> rhs_for_unit_solution<T>(                 \
        const mat::batch_csr<T>&)

BATCHLIN_INSTANTIATE_STENCIL(float);
BATCHLIN_INSTANTIATE_STENCIL(double);

}  // namespace batchlin::work
