#!/usr/bin/env bash
# Runs the serve-throughput benchmark and writes BENCH_serve_throughput.json
# at the repo root: closed-loop clients sweeping offered load against four
# service configs — batch1 (no coalescing), coalesced (dynamic batching,
# direct launches), graph_replay (coalesced + recorded command graphs), and
# persistent (workers consuming the lock-free ring, no per-batch wakeups).
# Headline numbers: speedup_coalesced_vs_batch1 and
# speedup_persistent_vs_coalesced at the highest load. A shard-count sweep
# (1/2/4 explicit PVC-1S shards, persistent mode) follows, reporting wall
# and modeled-aggregate solves/sec, the 1->2 scaling factor, p99, and the
# bit-identity probe across shard counts.
#
# Last comes the overload sweep: an open-loop generator calibrates the
# sustainable accepted rate with a doubling ladder, then offers 0.5x and
# 2x of it as priority-0 traffic against a service with the shed
# watermark, brownout ladder, and a 3 ms deadline enabled. The JSON
# records the "overload" cells plus the headline
# overload_accepted_p99_ratio_2x_vs_unsat — the robustness acceptance
# bar is that accepted-request p99 at 2x saturation stays within 1.5x of
# the unsaturated p99 (shedding keeps latency flat while excess load is
# refused).
#
# Usage: scripts/bench_serve.sh [build-dir]
set -euo pipefail

BUILD_DIR=${1:-build}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

cmake -B "$BUILD_DIR" -S . -G Ninja >/dev/null
cmake --build "$BUILD_DIR" --target bench_serve_throughput

"$BUILD_DIR/bench/bench_serve_throughput" \
  --min-time "${BENCH_MIN_TIME:-2}" \
  --json BENCH_serve_throughput.json
