#include "precond/isai.hpp"

#include <vector>

#include "util/dense_lu.hpp"
#include "util/error.hpp"

namespace batchlin::precond {

namespace {

index_type find_in_row(const index_type* row_ptrs,
                       const index_type* col_idxs, index_type row,
                       index_type col)
{
    index_type lo = row_ptrs[row];
    index_type hi = row_ptrs[row + 1] - 1;
    while (lo <= hi) {
        const index_type mid = lo + (hi - lo) / 2;
        if (col_idxs[mid] == col) {
            return mid;
        }
        if (col_idxs[mid] < col) {
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    return -1;
}

}  // namespace

template <typename T, typename S>
isai<T, S>::isai(const mat::batch_csr<T>& a)
    : rows_(a.rows()), nnz_(a.nnz())
{
    BATCHLIN_ENSURE_MSG(a.rows() == a.cols(),
                        "ISAI requires square systems");
    const auto& row_ptrs = a.row_ptrs();
    const auto& col_idxs = a.col_idxs();
    gather_offsets_.assign(rows_ + 1, 0);
    for (index_type i = 0; i < rows_; ++i) {
        const index_type s = row_ptrs[i + 1] - row_ptrs[i];
        max_local_size_ = std::max(max_local_size_, s);
        gather_offsets_[i + 1] = gather_offsets_[i] + s * s;
    }
    gather_pos_.assign(gather_offsets_[rows_], -1);
    // Precompute, once per shared pattern, where each entry of the local
    // dense system B[j][s] = A(col_s, col_j) sits in the values array.
    for (index_type i = 0; i < rows_; ++i) {
        const index_type begin = row_ptrs[i];
        const index_type s = row_ptrs[i + 1] - begin;
        index_type* table = gather_pos_.data() + gather_offsets_[i];
        for (index_type j_local = 0; j_local < s; ++j_local) {
            const index_type col_j = col_idxs[begin + j_local];
            for (index_type s_local = 0; s_local < s; ++s_local) {
                const index_type col_s = col_idxs[begin + s_local];
                table[j_local * s + s_local] = find_in_row(
                    row_ptrs.data(), col_idxs.data(), col_s, col_j);
            }
        }
    }
}

template <typename T, typename S>
typename isai<T, S>::applier isai<T, S>::generate(
    xpu::group& g, const blas::csr_view<T, S>& a, xpu::dspan<T> work) const
{
    BATCHLIN_ENSURE_DIMS(a.rows == rows_ && a.nnz == nnz_,
                         "ISAI metadata does not match the matrix");
    // The local dense solves run in compute precision T; only the
    // resulting M values are narrowed to the storage type on store.
    xpu::dspan<S> m_vals = xpu::reinterpret_span<S>(work, a.nnz);
    // Scratch for the per-row dense solves. The simulator runs the
    // work-group on a host thread, so heap scratch stands in for the
    // register/SLM staging the hardware kernel would use.
    const index_type smax = max_local_size_;
    std::vector<T> local(static_cast<std::size_t>(smax) * smax);
    std::vector<T> rhs(smax);
    std::vector<T> sol(smax);
    double flops = 0.0;
    for (index_type i = 0; i < rows_; ++i) {
        const index_type begin = a.row_ptrs[i];
        const index_type s = a.row_ptrs[i + 1] - begin;
        const index_type* table = gather_pos_.data() + gather_offsets_[i];
        // Assemble B with B[j][s_local] = A(col_s, col_j) and rhs = e_i.
        for (index_type j_local = 0; j_local < s; ++j_local) {
            for (index_type s_local = 0; s_local < s; ++s_local) {
                const index_type p = table[j_local * s + s_local];
                local[j_local * s + s_local] =
                    p >= 0 ? static_cast<T>(a.values[p]) : T{0};
            }
            rhs[j_local] = a.col_idxs[begin + j_local] == i ? T{1} : T{0};
        }
        std::vector<T> dense(local.begin(),
                             local.begin() + static_cast<std::size_t>(s) * s);
        std::vector<T> b(rhs.begin(), rhs.begin() + s);
        std::vector<T> x;
        BATCHLIN_ENSURE_MSG(dense_solve<T>(s, std::move(dense), std::move(b),
                                           x),
                            "singular local ISAI system");
        for (index_type s_local = 0; s_local < s; ++s_local) {
            m_vals[begin + s_local] = static_cast<S>(x[s_local]);
        }
        flops += (2.0 / 3.0) * s * s * s + 2.0 * s * s;
    }
    g.barrier();
    g.stats().flops += flops;
    blas::detail::charge_read(g, a.values, a.nnz);
    blas::detail::charge_write(g, m_vals, a.nnz);

    // Implicit view-of-const conversion keeps the sanitizer tag attached
    // to the approximate-inverse values the applier dereferences.
    blas::csr_view<T, S> m_view{a.rows,     a.cols,     a.nnz,
                                a.row_ptrs, a.col_idxs, m_vals};
    return {m_view};
}

template class isai<float>;
template class isai<double>;
template class isai<double, float>;

}  // namespace batchlin::precond
