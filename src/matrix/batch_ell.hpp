// BatchEll: batched ELLPACK matrices with one shared pattern
// (paper §3.1, Fig. 2).
//
// Rows are padded to a uniform width (max non-zeros per row), removing the
// row-pointer array. Column indexes and values are stored column-major —
// entry (row, k) of the padded layout lives at k*rows + row — so that
// consecutive work-items (one per row, §3.2) access consecutive addresses:
// the coalescing property the paper optimizes for.
#pragma once

#include <algorithm>
#include <vector>

#include "matrix/storage.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "xpu/span.hpp"

namespace batchlin::mat {

/// Column index marking a padding slot of the ELL layout.
inline constexpr index_type ell_padding = -1;

template <typename T>
class batch_ell {
public:
    using value_type = T;

    batch_ell() = default;

    /// Allocates a batch with the given padded width; pattern slots start as
    /// padding and values as zero.
    batch_ell(index_type num_batch_items, index_type rows, index_type cols,
              index_type ell_width)
        : num_batch_(num_batch_items),
          rows_(rows),
          cols_(cols),
          width_(ell_width),
          col_idxs_(static_cast<std::size_t>(rows) * ell_width, ell_padding),
          values_(static_cast<std::size_t>(num_batch_items) * rows *
                  ell_width)
    {
        BATCHLIN_ENSURE_MSG(
            num_batch_items >= 0 && rows >= 0 && cols >= 0 && ell_width >= 0,
            "negative dimension");
    }

    index_type num_batch_items() const { return num_batch_; }
    index_type rows() const { return rows_; }
    index_type cols() const { return cols_; }
    /// Uniform (padded) number of stored entries per row.
    index_type ell_width() const { return width_; }
    /// Stored entries per item including padding.
    size_type stored_per_item() const
    {
        return static_cast<size_type>(rows_) * width_;
    }

    /// Column-major linear index of padded slot (row, k).
    size_type slot(index_type row, index_type k) const
    {
        BATCHLIN_ENSURE_DIMS(row >= 0 && row < rows_ && k >= 0 && k < width_,
                             "ELL slot out of range");
        return static_cast<size_type>(k) * rows_ + row;
    }

    index_type& col_at(index_type row, index_type k)
    {
        return col_idxs_[slot(row, k)];
    }
    index_type col_at(index_type row, index_type k) const
    {
        return col_idxs_[slot(row, k)];
    }

    T& val_at(index_type batch, index_type row, index_type k)
    {
        require_native();
        return values_[item_offset(batch) + slot(row, k)];
    }
    T val_at(index_type batch, index_type row, index_type k) const
    {
        const size_type i = item_offset(batch) + slot(row, k);
        return storage_ == storage_precision::fp32
                   ? static_cast<T>(values32_[i])
                   : values_[i];
    }

    const std::vector<index_type>& col_idxs() const { return col_idxs_; }
    std::vector<index_type>& col_idxs() { return col_idxs_; }
    const std::vector<T>& values() const
    {
        require_native();
        return values_;
    }
    std::vector<T>& values()
    {
        require_native();
        return values_;
    }

    T* item_values(index_type batch)
    {
        require_native();
        return values_.data() + item_offset(batch);
    }
    const T* item_values(index_type batch) const
    {
        require_native();
        return values_.data() + item_offset(batch);
    }

    xpu::dspan<const T> item_span(index_type batch) const
    {
        return {item_values(batch),
                static_cast<index_type>(stored_per_item()),
                xpu::mem_space::constant};
    }

    /// See batch_csr: fp32 mode releases the native array and keeps the
    /// padded values in a half-width float array.
    storage_precision storage_mode() const { return storage_; }

    void set_storage_precision(storage_precision mode)
    {
        mode = effective_storage<T>(mode);
        if (mode == storage_) {
            return;
        }
        if (mode == storage_precision::fp32) {
            values32_.resize(values_.size());
            std::transform(values_.begin(), values_.end(),
                           values32_.begin(),
                           [](T v) { return static_cast<float>(v); });
            values_.clear();
            values_.shrink_to_fit();
        } else {
            values_.resize(values32_.size());
            std::transform(values32_.begin(), values32_.end(),
                           values_.begin(),
                           [](float v) { return static_cast<T>(v); });
            values32_.clear();
            values32_.shrink_to_fit();
        }
        storage_ = mode;
    }

    float* item_values_fp32(index_type batch)
    {
        require_fp32();
        return values32_.data() + item_offset(batch);
    }
    const float* item_values_fp32(index_type batch) const
    {
        require_fp32();
        return values32_.data() + item_offset(batch);
    }
    xpu::dspan<const float> item_span_fp32(index_type batch) const
    {
        return {item_values_fp32(batch),
                static_cast<index_type>(stored_per_item()),
                xpu::mem_space::constant};
    }
    std::vector<float>& values_fp32()
    {
        require_fp32();
        return values32_;
    }
    const std::vector<float>& values_fp32() const
    {
        require_fp32();
        return values32_;
    }

    /// Throws on malformed patterns: out-of-range columns or values stored
    /// in padding slots.
    void validate() const;

    /// Non-padding entries per item (the logical nnz).
    index_type nnz() const;

    /// Total storage in bytes including the shared pattern (Fig. 2);
    /// honest under fp32 mode (native array released on conversion).
    size_type storage_bytes() const
    {
        return static_cast<size_type>(values_.size()) * sizeof(T) +
               static_cast<size_type>(values32_.size()) * sizeof(float) +
               static_cast<size_type>(col_idxs_.size()) * sizeof(index_type);
    }

    /// Bytes one solve streams for this item's values (storage-aware).
    size_type value_bytes_per_item() const
    {
        const size_type width = storage_ == storage_precision::fp32
                                    ? sizeof(float)
                                    : sizeof(T);
        return stored_per_item() * width;
    }

private:
    void require_native() const
    {
        BATCHLIN_ENSURE_MSG(storage_ == storage_precision::native,
                            "native-typed value access on an fp32-storage "
                            "batch_ell");
    }
    void require_fp32() const
    {
        BATCHLIN_ENSURE_MSG(storage_ == storage_precision::fp32,
                            "fp32 value access on a native-storage "
                            "batch_ell");
    }

    size_type item_offset(index_type batch) const
    {
        BATCHLIN_ENSURE_DIMS(batch >= 0 && batch < num_batch_,
                             "batch index out of range");
        return static_cast<size_type>(batch) * stored_per_item();
    }

    index_type num_batch_ = 0;
    index_type rows_ = 0;
    index_type cols_ = 0;
    index_type width_ = 0;
    storage_precision storage_ = storage_precision::native;
    std::vector<index_type> col_idxs_;
    std::vector<T> values_;
    std::vector<float> values32_;
};

}  // namespace batchlin::mat
