#include "xpu/policy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace batchlin::xpu {

bool exec_policy::supports_sub_group(index_type size) const
{
    return std::find(allowed_sub_group_sizes.begin(),
                     allowed_sub_group_sizes.end(),
                     size) != allowed_sub_group_sizes.end();
}

exec_policy make_sycl_policy(index_type num_stacks,
                             size_type slm_bytes_per_group)
{
    BATCHLIN_ENSURE_MSG(num_stacks == 1 || num_stacks == 2,
                        "PVC GPUs have one or two stacks");
    exec_policy policy;
    policy.model = prog_model::sycl;
    policy.allowed_sub_group_sizes = {16, 32};
    policy.has_group_reduction = true;
    policy.num_stacks = num_stacks;
    policy.slm_bytes_per_group = slm_bytes_per_group;
    return policy;
}

exec_policy make_cuda_policy(size_type slm_bytes_per_group)
{
    exec_policy policy;
    policy.model = prog_model::cuda;
    // CUDA exposes only the warp (32 lanes); there is no runtime choice of
    // sub-group size and no work-group-level reduction primitive (§3.2).
    policy.allowed_sub_group_sizes = {32};
    policy.has_group_reduction = false;
    policy.num_stacks = 1;
    policy.slm_bytes_per_group = slm_bytes_per_group;
    policy.sub_group_switch_rows = 0;  // always 32
    return policy;
}

std::string to_string(prog_model model)
{
    return model == prog_model::sycl ? "SYCL" : "CUDA";
}

std::string to_string(reduce_path path)
{
    return path == reduce_path::group ? "group" : "sub-group";
}

std::string to_string(check_level level)
{
    switch (level) {
    case check_level::none: return "none";
    case check_level::shadow: return "shadow";
    case check_level::hazard: return "hazard";
    case check_level::adversary: return "adversary";
    }
    return "unknown";
}

std::string to_string(lane_order order)
{
    switch (order) {
    case lane_order::ascending: return "ascending";
    case lane_order::reversed: return "reversed";
    case lane_order::shuffled: return "shuffled";
    }
    return "unknown";
}

std::string to_string(launch_mode mode)
{
    switch (mode) {
    case launch_mode::direct: return "direct";
    case launch_mode::graph_replay: return "graph_replay";
    case launch_mode::persistent: return "persistent";
    }
    return "unknown";
}

launch_mode parse_launch_mode(const std::string& name)
{
    if (name == "direct") {
        return launch_mode::direct;
    }
    if (name == "graph_replay") {
        return launch_mode::graph_replay;
    }
    if (name == "persistent") {
        return launch_mode::persistent;
    }
    BATCHLIN_ENSURE_MSG(false,
                        "unknown launch mode (expected direct, "
                        "graph_replay, or persistent)");
    return launch_mode::direct;
}

}  // namespace batchlin::xpu
