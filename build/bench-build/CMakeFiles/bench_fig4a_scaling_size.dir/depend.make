# Empty dependencies file for bench_fig4a_scaling_size.
# This may be replaced when dependencies are built.
