#include "solver/gmres_impl.hpp"
#include "solver/instantiate.hpp"

namespace batchlin::solver {

BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_GMRES, double, double)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_GMRES_BOUND, double, double)

}  // namespace batchlin::solver
