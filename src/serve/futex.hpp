// Direct futex wait/wake for the serve completion slots.
//
// libstdc++'s std::atomic<T>::wait() front-loads a spin of sched_yield()
// calls before the futex syscall. On a host where clients and solver
// workers time-share cores, every yield is a voluntary context switch
// donated to an arbitrary runnable thread, and a blocking ticket wait
// turns into a dozen scheduler round-trips instead of one sleep/wake
// pair. These helpers go to the futex directly; any spinning policy is
// the caller's, written out where it can be reasoned about.
//
// Memory ordering is carried entirely by the atomic word the caller
// loads/stores around these calls — the futex is only a parking lot.
//
// The raw syscalls live in conc/shim.hpp now: these wrappers take the
// conc::atomic words the serve protocols use, so the checked build
// (BATCHLIN_CONC_CHECK) routes park/wake through the model checker's
// futex model — same lost-wake semantics, deterministic schedules.
#pragma once

#include <cstdint>

#include "conc/shim.hpp"

namespace batchlin::serve::detail {

/// Blocks until `word` is woken or its value is observed != `expected`.
/// May return spuriously; callers re-check the predicate in a loop.
inline void futex_wait(conc::atomic<std::uint32_t>& word, std::uint32_t expected)
{
    conc::futex_wait(word, expected);
}

/// Wakes every thread blocked in futex_wait on `word`.
inline void futex_wake_all(conc::atomic<std::uint32_t>& word)
{
    conc::futex_wake_all(word);
}

}  // namespace batchlin::serve::detail
