file(REMOVE_RECURSE
  "CMakeFiles/batchsolve.dir/batchsolve.cpp.o"
  "CMakeFiles/batchsolve.dir/batchsolve.cpp.o.d"
  "batchsolve"
  "batchsolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batchsolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
