#include "workload/replicate.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace batchlin::work {

template <typename T>
mat::batch_csr<T> replicate(const mat::batch_csr<T>& unique,
                            index_type batch_size, double perturbation,
                            std::uint64_t seed)
{
    BATCHLIN_ENSURE_MSG(unique.num_batch_items() > 0,
                        "cannot replicate an empty batch");
    BATCHLIN_ENSURE_MSG(batch_size >= 0, "negative batch size");
    mat::batch_csr<T> out(batch_size, unique.rows(), unique.cols(),
                          unique.row_ptrs(), unique.col_idxs());
    rng gen(seed);
    for (index_type b = 0; b < batch_size; ++b) {
        const index_type src = b % unique.num_batch_items();
        const T* from = unique.item_values(src);
        T* to = out.item_values(b);
        const T factor =
            perturbation > 0.0
                ? static_cast<T>(1.0 +
                                 gen.uniform(-perturbation, perturbation))
                : T{1};
        for (index_type k = 0; k < unique.nnz(); ++k) {
            to[k] = from[k] * factor;
        }
    }
    return out;
}

template <typename T>
mat::batch_csr<T> slice(const mat::batch_csr<T>& batch, index_type begin,
                        index_type end)
{
    BATCHLIN_ENSURE_DIMS(begin >= 0 && begin <= end &&
                             end <= batch.num_batch_items(),
                         "slice range out of bounds");
    mat::batch_csr<T> out(end - begin, batch.rows(), batch.cols(),
                          batch.row_ptrs(), batch.col_idxs());
    for (index_type b = begin; b < end; ++b) {
        std::copy_n(batch.item_values(b), batch.nnz(),
                    out.item_values(b - begin));
    }
    return out;
}

template <typename T>
mat::batch_dense<T> slice(const mat::batch_dense<T>& batch,
                          index_type begin, index_type end)
{
    BATCHLIN_ENSURE_DIMS(begin >= 0 && begin <= end &&
                             end <= batch.num_batch_items(),
                         "slice range out of bounds");
    mat::batch_dense<T> out(end - begin, batch.rows(), batch.cols());
    for (index_type b = begin; b < end; ++b) {
        std::copy_n(batch.item_values(b), batch.item_size(),
                    out.item_values(b - begin));
    }
    return out;
}

#define BATCHLIN_INSTANTIATE_REPLICATE(T)                                  \
    template mat::batch_csr<T> replicate<T>(const mat::batch_csr<T>&,      \
                                            index_type, double,            \
                                            std::uint64_t);                \
    template mat::batch_csr<T> slice<T>(const mat::batch_csr<T>&,          \
                                        index_type, index_type);           \
    template mat::batch_dense<T> slice<T>(const mat::batch_dense<T>&,      \
                                          index_type, index_type)

BATCHLIN_INSTANTIATE_REPLICATE(float);
BATCHLIN_INSTANTIATE_REPLICATE(double);

}  // namespace batchlin::work
