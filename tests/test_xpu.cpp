// Unit tests for the SYCL-like execution-model simulator: policies, SLM
#include <algorithm>
// arena, group collectives and counters, queue launches, stack partitions.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "util/error.hpp"
#include "xpu/arena.hpp"
#include "xpu/group.hpp"
#include "xpu/policy.hpp"
#include "xpu/queue.hpp"
#include "solver/dispatch.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using namespace batchlin::xpu;
using bl::index_type;

TEST(Policy, SyclSupportsBothSubGroupSizes)
{
    const exec_policy p = make_sycl_policy();
    EXPECT_TRUE(p.supports_sub_group(16));
    EXPECT_TRUE(p.supports_sub_group(32));
    EXPECT_FALSE(p.supports_sub_group(8));
    EXPECT_TRUE(p.has_group_reduction);
    EXPECT_EQ(p.model, prog_model::sycl);
}

TEST(Policy, CudaHasOnlyWarp32AndNoGroupReduction)
{
    const exec_policy p = make_cuda_policy(192 * 1024);
    EXPECT_FALSE(p.supports_sub_group(16));
    EXPECT_TRUE(p.supports_sub_group(32));
    EXPECT_FALSE(p.has_group_reduction);
    EXPECT_EQ(p.model, prog_model::cuda);
}

TEST(Policy, TwoStackSyclPolicy)
{
    EXPECT_EQ(make_sycl_policy(2).num_stacks, 2);
    EXPECT_THROW(make_sycl_policy(3), bl::error);
}

TEST(Arena, BumpAllocationAndReset)
{
    slm_arena arena(1024);
    auto a = arena.alloc<double>(16);
    EXPECT_EQ(a.len, 16);
    EXPECT_EQ(a.space, mem_space::slm);
    EXPECT_EQ(arena.used(), 128);
    auto b = arena.alloc<double>(32);
    EXPECT_NE(a.data, b.data);
    EXPECT_EQ(arena.used(), 128 + 256);
    arena.reset();
    EXPECT_EQ(arena.used(), 0);
    EXPECT_EQ(arena.high_water(), 128 + 256);
}

TEST(Arena, OverflowThrows)
{
    slm_arena arena(64);
    arena.alloc<double>(8);
    EXPECT_THROW(arena.alloc<double>(1), bl::error);
}

TEST(Arena, AlignmentRespected)
{
    slm_arena arena(1024);
    arena.alloc<char>(3);
    auto d = arena.alloc<double>(1);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data) % alignof(double),
              0u);
}

namespace {

/// Runs `body` in a standalone single group for collective tests.
template <typename Body>
counters run_single_group(index_type group_size, index_type sub_group_size,
                          Body&& body)
{
    counters stats;
    slm_arena arena(1 << 20);
    group g(0, group_size, sub_group_size, arena, stats);
    body(g);
    return stats;
}

}  // namespace

TEST(Group, ForItemsCoversRangeAndBarriers)
{
    std::vector<int> hits(100, 0);
    const counters stats =
        run_single_group(32, 16, [&](group& g) {
            g.for_items(100, [&](index_type i) { ++hits[i]; });
        });
    for (int h : hits) {
        EXPECT_EQ(h, 1);
    }
    EXPECT_EQ(stats.group_barriers, 1);
}

TEST(Group, ReduceSumMatchesSerialSumGroupPath)
{
    std::vector<double> data(97);
    std::iota(data.begin(), data.end(), 1.0);
    const double expect = 97.0 * 98.0 / 2.0;
    run_single_group(112, 16, [&](group& g) {
        const double sum = g.reduce_sum<double>(
            97, [&](index_type i) { return data[i]; },
            reduce_path::group);
        EXPECT_DOUBLE_EQ(sum, expect);
    });
}

TEST(Group, ReduceSumMatchesSerialSumSubGroupPath)
{
    std::vector<double> data(97);
    std::iota(data.begin(), data.end(), 1.0);
    const double expect = 97.0 * 98.0 / 2.0;
    run_single_group(112, 16, [&](group& g) {
        const double sum = g.reduce_sum<double>(
            97, [&](index_type i) { return data[i]; },
            reduce_path::sub_group);
        EXPECT_DOUBLE_EQ(sum, expect);
    });
}

TEST(Group, GroupReductionChargesSlmTraffic)
{
    const counters stats = run_single_group(64, 16, [&](group& g) {
        (void)g.reduce_sum<double>(
            64, [](index_type) { return 1.0; }, reduce_path::group);
    });
    // Group path stages all work-group lanes through SLM.
    EXPECT_DOUBLE_EQ(stats.slm_bytes, 2.0 * 64 * sizeof(double));
}

TEST(Group, SingleSubGroupReductionIsSlmFree)
{
    const counters stats = run_single_group(16, 16, [&](group& g) {
        (void)g.reduce_sum<double>(
            16, [](index_type) { return 1.0; }, reduce_path::sub_group);
    });
    // One sub-group covers the data: shuffles only, no SLM (§3.2).
    EXPECT_DOUBLE_EQ(stats.slm_bytes, 0.0);
}

TEST(Group, MultiSubGroupReductionPaysOnlyPartialCombine)
{
    const counters stats = run_single_group(64, 16, [&](group& g) {
        (void)g.reduce_sum<double>(
            64, [](index_type) { return 1.0; }, reduce_path::sub_group);
    });
    // 4 sub-groups: only the 4 partials cross SLM.
    EXPECT_DOUBLE_EQ(stats.slm_bytes, 2.0 * 4 * sizeof(double));
    EXPECT_LT(stats.slm_bytes, 2.0 * 64 * sizeof(double));
}

TEST(Group, SubGroupCounts)
{
    run_single_group(48, 16, [&](group& g) {
        EXPECT_EQ(g.size(), 48);
        EXPECT_EQ(g.sub_group_size(), 16);
        EXPECT_EQ(g.num_sub_groups(), 3);
    });
}

TEST(Queue, RunBatchExecutesEveryGroupOnce)
{
    queue q(make_sycl_policy());
    std::vector<int> visits(1000, 0);
    q.run_batch(1000, 32, 16, [&](group& g) { ++visits[g.id()]; });
    for (int v : visits) {
        EXPECT_EQ(v, 1);
    }
    EXPECT_EQ(q.stats().kernel_launches, 1);
    EXPECT_EQ(q.stats().groups_launched, 1000);
}

TEST(Queue, FirstGroupOffsetsIds)
{
    queue q(make_sycl_policy());
    std::vector<bl::index_type> ids(10, -1);
    q.run_batch(
        10, 16, 16, [&](group& g) { ids[g.id() - 50] = g.id(); }, 50);
    EXPECT_EQ(*std::min_element(ids.begin(), ids.end()), 50);
    EXPECT_EQ(*std::max_element(ids.begin(), ids.end()), 59);
}

TEST(Queue, RejectsInvalidLaunchConfigurations)
{
    queue q(make_sycl_policy());
    // Work-group size must be divisible by the sub-group size (SYCL rule).
    EXPECT_THROW(q.run_batch(1, 40, 16, [](group&) {}), bl::error);
    // Unsupported sub-group size.
    EXPECT_THROW(q.run_batch(1, 32, 8, [](group&) {}), bl::error);
    // Over the device maximum.
    EXPECT_THROW(q.run_batch(1, 4096, 16, [](group&) {}), bl::error);
}

TEST(Queue, CountersAccumulateAcrossLaunchesAndReset)
{
    queue q(make_sycl_policy());
    q.run_batch(4, 16, 16, [](group& g) { g.stats().flops += 10; });
    q.run_batch(4, 16, 16, [](group& g) { g.stats().flops += 10; });
    EXPECT_EQ(q.stats().kernel_launches, 2);
    EXPECT_DOUBLE_EQ(q.stats().flops, 80.0);
    EXPECT_DOUBLE_EQ(q.last_launch_stats().flops, 40.0);
    q.reset_stats();
    EXPECT_EQ(q.stats().kernel_launches, 0);
}

TEST(Queue, SlmFootprintTracksHighWater)
{
    queue q(make_sycl_policy());
    q.run_batch(8, 16, 16,
                [](group& g) { (void)g.slm().alloc<double>(100); });
    EXPECT_EQ(q.last_launch_stats().slm_footprint_bytes,
              static_cast<bl::size_type>(100 * sizeof(double)));
}

TEST(Queue, DeterministicCountersRegardlessOfSchedule)
{
    auto run = [] {
        queue q(make_sycl_policy());
        q.run_batch(333, 32, 16, [](group& g) {
            g.stats().flops += static_cast<double>(g.id() % 7);
            g.stats().slm_bytes += 8.0;
        });
        return q.stats();
    };
    const counters a = run();
    const counters b = run();
    EXPECT_DOUBLE_EQ(a.flops, b.flops);
    EXPECT_DOUBLE_EQ(a.slm_bytes, b.slm_bytes);
}

namespace {

/// Runs one batched BiCGSTAB solve under `num_threads` host threads and
/// returns the solution values plus the cumulative queue counters.
std::pair<std::vector<double>, counters> solve_with_threads(int num_threads)
{
    const int saved = omp_get_max_threads();
    omp_set_num_threads(num_threads);
    queue q(make_sycl_policy());
    const bl::solver::batch_matrix<double> a(
        bl::work::stencil_3pt<double>(24, 24, 5));
    const auto b = bl::work::random_rhs<double>(24, 24, 11);
    bl::mat::batch_dense<double> x(24, 24, 1);
    x.fill(0.0);
    bl::solver::solve_options opts;
    opts.solver = bl::solver::solver_type::bicgstab;
    opts.preconditioner = bl::precond::type::jacobi;
    opts.criterion = bl::stop::relative(1e-8, 60);
    (void)bl::solver::solve<double>(q, a, b, x, opts);
    omp_set_num_threads(saved);
    return {x.values(), q.stats()};
}

}  // namespace

TEST(Queue, SolveBitIdenticalAcrossHostThreadCounts)
{
    // The per-thread arena pool and counter merge must keep results and
    // cumulative counters independent of the host thread count: the serial
    // fast path (1 thread) and the parallel region (here oversubscribed on
    // purpose) have to agree bit for bit.
    const auto [x1, c1] = solve_with_threads(1);
    const auto [x4, c4] = solve_with_threads(4);
    EXPECT_EQ(x1, x4);
    EXPECT_EQ(c1.kernel_launches, c4.kernel_launches);
    EXPECT_EQ(c1.groups_launched, c4.groups_launched);
    EXPECT_EQ(c1.group_barriers, c4.group_barriers);
    EXPECT_EQ(c1.slm_footprint_bytes, c4.slm_footprint_bytes);
    EXPECT_DOUBLE_EQ(c1.flops, c4.flops);
    EXPECT_DOUBLE_EQ(c1.slm_bytes, c4.slm_bytes);
    EXPECT_DOUBLE_EQ(c1.global_read_bytes, c4.global_read_bytes);
    EXPECT_DOUBLE_EQ(c1.global_write_bytes, c4.global_write_bytes);
    EXPECT_DOUBLE_EQ(c1.constant_read_bytes, c4.constant_read_bytes);
}

TEST(Queue, RepeatedSolvesOnOneQueueAreBitIdentical)
{
    // Pooled arenas, pooled counter blocks, and the reused spill scratch
    // must not leak state between solves: every repetition of the same
    // solve reports the same launch counters.
    queue q(make_sycl_policy());
    const bl::solver::batch_matrix<double> a(
        bl::work::stencil_3pt<double>(8, 16, 3));
    const auto b = bl::work::random_rhs<double>(8, 16, 7);
    bl::solver::solve_options opts;
    opts.solver = bl::solver::solver_type::cg;
    opts.preconditioner = bl::precond::type::jacobi;
    opts.criterion = bl::stop::relative(1e-8, 50);

    bl::mat::batch_dense<double> x(8, 16, 1);
    x.fill(0.0);
    (void)bl::solver::solve<double>(q, a, b, x, opts);
    const counters first = q.last_launch_stats();
    const std::vector<double> x_first = x.values();
    for (int rep = 0; rep < 3; ++rep) {
        x.fill(0.0);
        (void)bl::solver::solve<double>(q, a, b, x, opts);
        const counters& again = q.last_launch_stats();
        EXPECT_DOUBLE_EQ(first.flops, again.flops);
        EXPECT_DOUBLE_EQ(first.slm_bytes, again.slm_bytes);
        EXPECT_EQ(first.group_barriers, again.group_barriers);
        EXPECT_EQ(first.slm_footprint_bytes, again.slm_footprint_bytes);
        EXPECT_EQ(x_first, x.values());
    }
    EXPECT_GE(q.pooled_threads(), 1);
}

TEST(Queue, PooledArenaFootprintResetsPerLaunch)
{
    // slm_footprint_bytes is a per-launch high water mark; a reused arena
    // must not carry the previous launch's (larger) footprint forward.
    queue q(make_sycl_policy());
    q.run_batch(4, 16, 16,
                [](group& g) { (void)g.slm().alloc<double>(512); });
    EXPECT_EQ(q.last_launch_stats().slm_footprint_bytes,
              static_cast<bl::size_type>(512 * sizeof(double)));
    q.run_batch(4, 16, 16,
                [](group& g) { (void)g.slm().alloc<double>(16); });
    EXPECT_EQ(q.last_launch_stats().slm_footprint_bytes,
              static_cast<bl::size_type>(16 * sizeof(double)));
}

TEST(StackPartition, SplitsEvenly)
{
    const batch_range r0 = stack_partition(100, 2, 0);
    const batch_range r1 = stack_partition(100, 2, 1);
    EXPECT_EQ(r0.begin, 0);
    EXPECT_EQ(r0.end, 50);
    EXPECT_EQ(r1.begin, 50);
    EXPECT_EQ(r1.end, 100);
}

TEST(StackPartition, HandlesRemainder)
{
    const batch_range r0 = stack_partition(101, 2, 0);
    const batch_range r1 = stack_partition(101, 2, 1);
    EXPECT_EQ(r0.size(), 51);
    EXPECT_EQ(r1.size(), 50);
    EXPECT_EQ(r0.end, r1.begin);
}

TEST(StackPartition, RejectsBadIds)
{
    EXPECT_THROW(stack_partition(10, 2, 2), bl::error);
    EXPECT_THROW(stack_partition(10, 0, 0), bl::error);
}

TEST(StackPartition, ZeroItemsYieldEmptyValidRanges)
{
    for (index_type s = 0; s < 4; ++s) {
        const batch_range r = stack_partition(0, 4, s);
        EXPECT_EQ(r.begin, 0);
        EXPECT_EQ(r.end, 0);
        EXPECT_EQ(r.size(), 0);
    }
}

TEST(StackPartition, MoreStacksThanItemsLeavesTrailingStacksEmpty)
{
    // 3 items over 8 stacks: the first three stacks get one item each,
    // the rest are valid empty ranges; contiguity and coverage hold.
    index_type covered = 0;
    index_type prev_end = 0;
    for (index_type s = 0; s < 8; ++s) {
        const batch_range r = stack_partition(3, 8, s);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_GE(r.size(), 0);
        EXPECT_EQ(r.size(), s < 3 ? 1 : 0);
        covered += r.size();
        prev_end = r.end;
    }
    EXPECT_EQ(covered, 3);
    EXPECT_EQ(prev_end, 3);
}

TEST(StackPartition, RemainderSpreadsOverLeadingStacks)
{
    // 10 items over 4 stacks: 3, 3, 2, 2 — the PVC driver's near-equal
    // contiguous chunks, remainder absorbed by the leading stacks.
    const index_type expected[] = {3, 3, 2, 2};
    index_type prev_end = 0;
    for (index_type s = 0; s < 4; ++s) {
        const batch_range r = stack_partition(10, 4, s);
        EXPECT_EQ(r.size(), expected[s]) << "stack " << s;
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
    }
    EXPECT_EQ(prev_end, 10);
}

TEST(StackQueue, InheritsPolicyWithOneStack)
{
    queue parent(make_sycl_policy(2));
    const queue child = make_stack_queue(parent);
    EXPECT_EQ(child.policy().num_stacks, 1);
    EXPECT_EQ(child.policy().model, prog_model::sycl);
    EXPECT_EQ(child.stats().kernel_launches, 0);
}

TEST(Counters, PlusEqualsAggregates)
{
    counters a;
    a.flops = 10;
    a.slm_footprint_bytes = 100;
    counters b;
    b.flops = 5;
    b.slm_footprint_bytes = 200;
    b.kernel_launches = 1;
    a += b;
    EXPECT_DOUBLE_EQ(a.flops, 15.0);
    EXPECT_EQ(a.slm_footprint_bytes, 200);  // max, not sum
    EXPECT_EQ(a.kernel_launches, 1);
}

TEST(Span, SubspanBoundsChecked)
{
    std::vector<double> buf(10);
    dspan<double> s{buf.data(), 10, mem_space::global};
    auto sub = s.subspan(2, 5);
    EXPECT_EQ(sub.len, 5);
    EXPECT_EQ(sub.data, buf.data() + 2);
    EXPECT_THROW(s.subspan(8, 5), bl::dimension_mismatch);
}

TEST(Queue, KernelExceptionsSurfaceOnTheHost)
{
    // A throw inside a work-group must not terminate the process; the
    // queue rethrows it after the launch, like a device error reported at
    // synchronization.
    queue q(make_sycl_policy());
    EXPECT_THROW(q.run_batch(64, 16, 16,
                             [](group& g) {
                                 if (g.id() == 37) {
                                     BATCHLIN_ENSURE_MSG(false,
                                                         "device fault");
                                 }
                             }),
                 bl::error);
    // The queue stays usable afterwards.
    int ok = 0;
    q.run_batch(4, 16, 16, [&](group&) {
#pragma omp atomic
        ++ok;
    });
    EXPECT_EQ(ok, 4);
}

TEST(Queue, SingularIsaiSystemThrowsInsteadOfCrashing)
{
    // ISAI generation solves a small dense system per row; a singular one
    // must surface as a host-side exception through the fused kernel.
    namespace mat = batchlin::mat;
    namespace solver = batchlin::solver;
    namespace work = batchlin::work;
    auto a = work::stencil_3pt<double>(4, 8, 3);
    // Make item 2's rows 3 and 4 identical => the local ISAI system of
    // those rows becomes singular.
    for (index_type k = a.row_ptrs()[3]; k < a.row_ptrs()[4]; ++k) {
        a.item_values(2)[k] = 0.0;
    }
    const solver::batch_matrix<double> variant = a;
    const auto b = work::random_rhs<double>(4, 8, 4);
    mat::batch_dense<double> x(4, 8, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = batchlin::precond::type::isai;
    queue q(make_sycl_policy());
    EXPECT_THROW(solver::solve(q, variant, b, x, opts), bl::error);
}

TEST(Queue, LaunchHistoryIsABoundedRing)
{
    queue q(make_sycl_policy());
    q.enable_profiling();
    q.set_launch_history_capacity(3);
    EXPECT_EQ(q.launch_history_capacity(), 3);
    for (index_type n = 1; n <= 5; ++n) {
        q.run_batch(n, 16, 16, [](group&) {});
    }
    // Only the 3 most recent launches survive, oldest first.
    const auto history = q.launch_history();
    ASSERT_EQ(history.size(), 3u);
    EXPECT_EQ(history[0].num_groups, 3);
    EXPECT_EQ(history[1].num_groups, 4);
    EXPECT_EQ(history[2].num_groups, 5);
    EXPECT_EQ(q.launch_history_dropped(), 2);
    // Shrinking keeps the newest records.
    q.set_launch_history_capacity(2);
    const auto shrunk = q.launch_history();
    ASSERT_EQ(shrunk.size(), 2u);
    EXPECT_EQ(shrunk[0].num_groups, 4);
    EXPECT_EQ(shrunk[1].num_groups, 5);
    q.clear_launch_history();
    EXPECT_TRUE(q.launch_history().empty());
    EXPECT_EQ(q.launch_history_dropped(), 0);
    EXPECT_THROW(q.set_launch_history_capacity(0), bl::error);
}

TEST(Queue, ScratchPoolZeroFillIsOptional)
{
    queue q(make_sycl_policy());
    std::byte* block = q.scratch().acquire(64);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(block[i], std::byte{0}) << i;
    }
    std::memset(block, 0xab, 64);
    // Non-zeroed reacquisition of a fitting block keeps prior contents.
    block = q.scratch().acquire(64, false);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(block[i], std::byte{0xab}) << i;
    }
    // Growth value-initializes the new tail even without the fill.
    block = q.scratch().acquire(128, false);
    for (int i = 64; i < 128; ++i) {
        EXPECT_EQ(block[i], std::byte{0}) << i;
    }
    // A zeroed acquisition scrubs everything again.
    block = q.scratch().acquire(128, true);
    for (int i = 0; i < 128; ++i) {
        EXPECT_EQ(block[i], std::byte{0}) << i;
    }
}

TEST(Queue, ScratchPoolBlocksSuitAnyFundamentalAlignment)
{
    // The solvers carve typed workspace slots straight out of the scratch
    // block, so it must be aligned for any fundamental type — including
    // after odd-sized growth steps.
    queue q(make_sycl_policy());
    for (const bl::size_type bytes : {1, 63, 64, 129, 4097}) {
        std::byte* block = q.scratch().acquire(bytes);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block) %
                      alignof(std::max_align_t),
                  0u)
            << "acquire(" << bytes << ")";
    }
}

#ifndef BATCHLIN_XPU_CHECK
TEST(Queue, CheckLevelRequiresCheckedBuild)
{
    // The sanitizer knob must never silently no-op: asking for a checked
    // launch from an unchecked build is a configuration error.
    exec_policy policy = make_sycl_policy();
    policy.check_level = check_level::hazard;
    queue q(policy);
    EXPECT_THROW(q.run_batch(1, 16, 16, [](group&) {}), bl::error);
}
#endif

#ifndef NDEBUG
TEST(Queue, ConcurrentLaunchesOnOneQueueAreRejectedInDebug)
{
    // The queue documents that launch resources belong to one launch at a
    // time; a reentrant run_batch is the deterministic way to trigger the
    // debug-only guard.
    queue q(make_sycl_policy());
    EXPECT_THROW(q.run_batch(1, 16, 16,
                             [&](group&) {
                                 q.run_batch(1, 16, 16, [](group&) {});
                             }),
                 bl::error);
    // The guard resets; the queue stays usable.
    int ok = 0;
    q.run_batch(2, 16, 16, [&](group&) {
#pragma omp atomic
        ++ok;
    });
    EXPECT_EQ(ok, 2);
}
#endif
