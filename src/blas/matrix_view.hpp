// Device-side views of one batch item of each matrix format.
//
// Solver kernels are templated on the view type (the Format axis of the
// multi-level dispatch, §3.3), so the SpMV specialization is resolved at
// compile time and the fused kernel contains no format branches (§3.4).
//
// The second template parameter S is the *storage* type of the values
// span (mat::storage_precision). It defaults to the compute type T; under
// fp32 storage S = float and the SpMV kernels widen each value on read —
// halving the streamed value bytes while all arithmetic stays in T.
#pragma once

#include <type_traits>

#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "matrix/batch_ell.hpp"
#include "xpu/span.hpp"

namespace batchlin::blas {

/// One CSR batch item: shared pattern + this item's values. The values span
/// carries its memory-space tag, so the same view type serves both the
/// system matrix (constant, L3-cacheable) and SLM-resident ILU factors.
template <typename T, typename S = T>
struct csr_view {
    index_type rows = 0;
    index_type cols = 0;
    index_type nnz = 0;
    const index_type* row_ptrs = nullptr;
    const index_type* col_idxs = nullptr;
    xpu::dspan<const S> values;
};

/// One ELL batch item (column-major padded storage).
template <typename T, typename S = T>
struct ell_view {
    index_type rows = 0;
    index_type cols = 0;
    index_type width = 0;
    const index_type* col_idxs = nullptr;
    xpu::dspan<const S> values;
};

/// One dense batch item (row-major).
template <typename T, typename S = T>
struct dense_view {
    index_type rows = 0;
    index_type cols = 0;
    xpu::dspan<const S> values;
};

template <typename T>
csr_view<T> item_view(const mat::batch_csr<T>& m, index_type batch)
{
    return {m.rows(), m.cols(), m.nnz(), m.row_ptrs().data(),
            m.col_idxs().data(), m.item_span(batch)};
}

template <typename T>
ell_view<T> item_view(const mat::batch_ell<T>& m, index_type batch)
{
    return {m.rows(), m.cols(), m.ell_width(), m.col_idxs().data(),
            m.item_span(batch)};
}

template <typename T>
dense_view<T> item_view(const mat::batch_dense<T>& m, index_type batch)
{
    return {m.rows(), m.cols(),
            m.item_span(batch, xpu::mem_space::constant)};
}

/// Storage-typed views: like item_view, but the values span is taken from
/// the matrix's S-typed array. S == T degrades to the plain view (native
/// storage); S == float reads the half-width array the matrix holds in
/// fp32 mode.
template <typename S, typename T>
csr_view<T, S> item_view_as(const mat::batch_csr<T>& m, index_type batch)
{
    if constexpr (std::is_same_v<S, T>) {
        return item_view(m, batch);
    } else {
        static_assert(std::is_same_v<S, float>,
                      "fp32 is the only reduced storage type");
        return {m.rows(), m.cols(), m.nnz(), m.row_ptrs().data(),
                m.col_idxs().data(), m.item_span_fp32(batch)};
    }
}

template <typename S, typename T>
ell_view<T, S> item_view_as(const mat::batch_ell<T>& m, index_type batch)
{
    if constexpr (std::is_same_v<S, T>) {
        return item_view(m, batch);
    } else {
        static_assert(std::is_same_v<S, float>,
                      "fp32 is the only reduced storage type");
        return {m.rows(), m.cols(), m.ell_width(), m.col_idxs().data(),
                m.item_span_fp32(batch)};
    }
}

template <typename S, typename T>
dense_view<T, S> item_view_as(const mat::batch_dense<T>& m,
                              index_type batch)
{
    if constexpr (std::is_same_v<S, T>) {
        return item_view(m, batch);
    } else {
        static_assert(std::is_same_v<S, float>,
                      "fp32 is the only reduced storage type");
        return {m.rows(), m.cols(), m.item_span_fp32(batch)};
    }
}

}  // namespace batchlin::blas
