#include "perfmodel/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace batchlin::perf {

xpu::counters scale_counters(const xpu::counters& c, double factor)
{
    xpu::counters scaled = c;
    scaled.flops *= factor;
    scaled.global_read_bytes *= factor;
    scaled.global_write_bytes *= factor;
    scaled.slm_bytes *= factor;
    scaled.constant_read_bytes *= factor;
    scaled.total_iterations *= factor;
    scaled.groups_launched = static_cast<std::int64_t>(
        std::llround(static_cast<double>(c.groups_launched) * factor));
    return scaled;
}

time_breakdown estimate_time(const device_spec& device,
                             const solve_profile& profile)
{
    BATCHLIN_ENSURE_MSG(profile.num_systems > 0, "empty solve profile");
    BATCHLIN_ENSURE_MSG(profile.work_group_size > 0,
                        "missing launch configuration");
    const xpu::counters& c = profile.totals;
    time_breakdown t;

    // --- Occupancy: how many work-groups stay resident per core. The SLM
    // footprint is the limiter the paper identifies (§4.4); the thread-slot
    // limit applies on top.
    index_type groups_per_core_slm = device.max_groups_per_core;
    if (c.slm_footprint_bytes > 0) {
        groups_per_core_slm = static_cast<index_type>(
            device.slm_per_core_bytes / c.slm_footprint_bytes);
        groups_per_core_slm = std::max<index_type>(groups_per_core_slm, 1);
    }
    const index_type groups_per_core_threads = std::max<index_type>(
        device.max_threads_per_core / profile.work_group_size, 1);
    const index_type groups_per_core =
        std::min({groups_per_core_slm, groups_per_core_threads,
                  device.max_groups_per_core});
    t.groups_in_flight = std::min<index_type>(
        device.num_cores * groups_per_core, profile.num_systems);
    t.occupancy =
        std::min(1.0, static_cast<double>(t.groups_in_flight) *
                          profile.work_group_size /
                          (static_cast<double>(device.num_cores) *
                           device.max_threads_per_core));

    // --- Effective rates. The FP pipeline wastes the padded lanes of the
    // round-up (§3.6) and idles when occupancy cannot cover latency.
    const double peak_tflops =
        profile.fp64 ? device.fp64_peak_tflops : device.fp32_peak_tflops;
    const double latency_cover =
        std::min(1.0, std::sqrt(t.occupancy) + 0.25);
    const double flop_rate = peak_tflops * 1e12 * device.efficiency *
                             profile.thread_utilization * latency_cover;
    const double hbm_rate = device.hbm_bw_tbs * 1e12 * device.efficiency;
    const double l2_rate = device.l2_bw_tbs * 1e12 * device.efficiency;
    // SLM bandwidth is a per-core resource: only cores holding resident
    // groups contribute, and a core needs ~2 groups in flight to hide the
    // SLM access latency.
    const double active_cores = std::min<double>(
        device.num_cores, static_cast<double>(t.groups_in_flight));
    const double slm_saturation =
        std::min(1.0, static_cast<double>(groups_per_core) / 2.0 + 0.25);
    const double slm_rate = device.slm_bw_core_gbs * 1e9 * active_cores *
                            slm_saturation * device.efficiency;

    // --- Constant-operand placement: the matrices and rhs of the resident
    // systems cache in the last-level cache (§4.4). When the resident
    // working set exceeds the cache, the overflow fraction streams from
    // HBM — a fractional-residency model rather than a cliff.
    const double resident_constant =
        static_cast<double>(profile.constant_footprint_per_system) *
        t.groups_in_flight;
    const double cached_fraction =
        resident_constant > 0.0
            ? std::min(1.0, static_cast<double>(device.l2_size_bytes) /
                                resident_constant)
            : 1.0;
    const double hbm_bytes = c.global_read_bytes + c.global_write_bytes +
                             (1.0 - cached_fraction) * c.constant_read_bytes;
    const double l2_bytes = cached_fraction * c.constant_read_bytes;

    // --- Per-resource times; the kernel binds on the slowest.
    t.flop_seconds = c.flops / flop_rate;
    t.hbm_seconds = hbm_bytes / hbm_rate;
    t.l2_seconds = l2_bytes / l2_rate;
    t.slm_seconds = c.slm_bytes / slm_rate;
    t.launch_seconds =
        static_cast<double>(c.kernel_launches) * device.kernel_launch_us *
        1e-6;

    double kernel_seconds =
        std::max({t.flop_seconds, t.hbm_seconds, t.l2_seconds,
                  t.slm_seconds});
    if (t.flop_seconds >= t.hbm_seconds &&
        t.flop_seconds >= t.l2_seconds &&
        t.flop_seconds >= t.slm_seconds) {
        t.bound_by = "FLOP";
    } else if (t.slm_seconds >= t.hbm_seconds &&
               t.slm_seconds >= t.l2_seconds) {
        t.bound_by = "SLM";
    } else if (t.l2_seconds >= t.hbm_seconds) {
        t.bound_by = "L3";
    } else {
        t.bound_by = "HBM";
    }

    // Multi-stack implicit scaling is slightly sub-linear (§4.2) and pays
    // a fixed split overhead per launch that only small problems notice.
    if (device.num_stacks > 1) {
        kernel_seconds /= device.stack_scaling_efficiency;
        t.launch_seconds += static_cast<double>(c.kernel_launches) *
                            device.implicit_scaling_overhead_us * 1e-6;
    }
    t.total_seconds = t.launch_seconds + kernel_seconds;
    return t;
}

}  // namespace batchlin::perf
