// Unit tests for the preconditioners: identity, scalar Jacobi (all three
// formats), ILU(0) factorization/application, and ISAI generation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/matrix_view.hpp"
#include "matrix/conversions.hpp"
#include "precond/identity.hpp"
#include "precond/ilu0.hpp"
#include "precond/isai.hpp"
#include "precond/jacobi.hpp"
#include "util/dense_lu.hpp"
#include "util/error.hpp"
#include "workload/chemistry.hpp"
#include "workload/stencil.hpp"
#include "xpu/arena.hpp"
#include "xpu/group.hpp"

namespace bl = batchlin;
using namespace batchlin::xpu;
using batchlin::index_type;
namespace mat = batchlin::mat;
namespace blas = batchlin::blas;
namespace precond = batchlin::precond;

namespace {

struct group_fixture {
    counters stats;
    slm_arena arena{1 << 22};
    group g{0, 32, 16, arena, stats};

    template <typename T>
    dspan<T> global(std::vector<T>& v)
    {
        return {v.data(), static_cast<index_type>(v.size()),
                mem_space::global};
    }
};

}  // namespace

TEST(Identity, ApplyIsCopy)
{
    group_fixture f;
    precond::identity<double> pc;
    const auto a = batchlin::work::stencil_3pt<double>(1, 8);
    std::vector<double> r{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<double> z(8);
    auto applier = pc.generate(f.g, blas::item_view(a, 0), {});
    applier.apply(f.g, f.global(r), f.global(z));
    EXPECT_EQ(z, r);
    EXPECT_EQ(precond::identity<double>::workspace_elems(100, 500), 0);
}

TEST(Jacobi, CsrGenerateExtractsInverseDiagonal)
{
    group_fixture f;
    const auto a = batchlin::work::stencil_3pt<double>(2, 10);
    precond::jacobi<double> pc(a);
    std::vector<double> work(10);
    auto applier = pc.generate(f.g, blas::item_view(a, 1), f.global(work));
    for (index_type i = 0; i < 10; ++i) {
        EXPECT_NEAR(work[i], 1.0 / a.at(1, i, i), 1e-14);
    }
    std::vector<double> r(10, 2.0), z(10);
    applier.apply(f.g, f.global(r), f.global(z));
    for (index_type i = 0; i < 10; ++i) {
        EXPECT_NEAR(z[i], 2.0 / a.at(1, i, i), 1e-14);
    }
}

TEST(Jacobi, EllAndDenseAgreeWithCsr)
{
    group_fixture f;
    const auto a = batchlin::work::generate_mechanism<double>(
        batchlin::work::mechanism_by_name("drm19"), 5);
    const auto e = mat::to_ell(a);
    const auto d = mat::to_dense(a);
    precond::jacobi<double> pc_csr(a);
    precond::jacobi<double> pc_other;
    std::vector<double> w_csr(a.rows()), w_ell(a.rows()), w_dense(a.rows());
    pc_csr.generate(f.g, blas::item_view(a, 3), f.global(w_csr));
    pc_other.generate(f.g, blas::item_view(e, 3), f.global(w_ell));
    pc_other.generate(f.g, blas::item_view(d, 3), f.global(w_dense));
    for (index_type i = 0; i < a.rows(); ++i) {
        EXPECT_NEAR(w_csr[i], w_ell[i], 1e-14);
        EXPECT_NEAR(w_csr[i], w_dense[i], 1e-14);
    }
}

TEST(Jacobi, MissingDiagonalThrows)
{
    mat::batch_csr<double> a(1, 2, 2, {0, 1, 2}, {1, 0});
    EXPECT_THROW(precond::jacobi<double>{a}, bl::error);
}

namespace {

/// Multiplies the ILU0 factors (unit-lower L, upper U stored in one CSR
/// value array) back together and returns the product as a dense matrix.
std::vector<double> multiply_factors(const mat::batch_csr<double>& a,
                                     const std::vector<double>& factors)
{
    const index_type n = a.rows();
    std::vector<double> l(n * n, 0.0), u(n * n, 0.0), prod(n * n, 0.0);
    for (index_type i = 0; i < n; ++i) {
        l[i * n + i] = 1.0;
        for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1]; ++k) {
            const index_type j = a.col_idxs()[k];
            if (j < i) {
                l[i * n + j] = factors[k];
            } else {
                u[i * n + j] = factors[k];
            }
        }
    }
    for (index_type i = 0; i < n; ++i) {
        for (index_type k = 0; k < n; ++k) {
            for (index_type j = 0; j < n; ++j) {
                prod[i * n + j] += l[i * n + k] * u[k * n + j];
            }
        }
    }
    return prod;
}

}  // namespace

TEST(Ilu0, ExactOnTridiagonalPattern)
{
    // A tridiagonal pattern produces no fill, so ILU(0) == exact LU and
    // L*U must reproduce A exactly.
    group_fixture f;
    const auto a = batchlin::work::stencil_3pt<double>(1, 12);
    precond::ilu0<double> pc(a);
    std::vector<double> work(a.nnz() + a.rows());
    pc.generate(f.g, blas::item_view(a, 0), f.global(work));
    const std::vector<double> factors(work.begin(), work.begin() + a.nnz());
    const auto prod = multiply_factors(a, factors);
    const auto dense = mat::to_dense(a);
    for (index_type i = 0; i < 12; ++i) {
        for (index_type j = 0; j < 12; ++j) {
            EXPECT_NEAR(prod[i * 12 + j], dense.at(0, i, j), 1e-12)
                << i << "," << j;
        }
    }
}

TEST(Ilu0, ApplySolvesLUExactlyOnNoFillPattern)
{
    group_fixture f;
    const auto a = batchlin::work::stencil_3pt<double>(1, 16);
    precond::ilu0<double> pc(a);
    std::vector<double> work(a.nnz() + a.rows());
    auto applier = pc.generate(f.g, blas::item_view(a, 0), f.global(work));
    // For a no-fill pattern M = A, so apply(r) must solve A z = r.
    std::vector<double> z_true(16);
    for (index_type i = 0; i < 16; ++i) {
        z_true[i] = std::cos(0.3 * i);
    }
    std::vector<double> r(16, 0.0);
    for (index_type i = 0; i < 16; ++i) {
        for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1]; ++k) {
            r[i] += a.item_values(0)[k] * z_true[a.col_idxs()[k]];
        }
    }
    std::vector<double> z(16);
    applier.apply(f.g, f.global(r), f.global(z));
    for (index_type i = 0; i < 16; ++i) {
        EXPECT_NEAR(z[i], z_true[i], 1e-11);
    }
}

TEST(Ilu0, MatchesDiagonalOnGeneralPattern)
{
    // On a general pattern ILU(0) is inexact, but the residual A - L*U must
    // vanish ON the pattern positions (the defining ILU(0) property).
    group_fixture f;
    const auto a = batchlin::work::generate_mechanism<double>(
        batchlin::work::mechanism_by_name("drm19"), 99);
    precond::ilu0<double> pc(a);
    std::vector<double> work(a.nnz() + a.rows());
    pc.generate(f.g, blas::item_view(a, 0), f.global(work));
    const std::vector<double> factors(work.begin(), work.begin() + a.nnz());
    const auto prod = multiply_factors(a, factors);
    const index_type n = a.rows();
    for (index_type i = 0; i < n; ++i) {
        for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1]; ++k) {
            const index_type j = a.col_idxs()[k];
            EXPECT_NEAR(prod[i * n + j], a.item_values(0)[k], 1e-9)
                << "pattern position (" << i << "," << j << ")";
        }
    }
}

TEST(Ilu0, MissingDiagonalThrows)
{
    mat::batch_csr<double> a(1, 2, 2, {0, 1, 2}, {1, 0});
    EXPECT_THROW(precond::ilu0<double>{a}, bl::error);
}

TEST(Isai, ExactInverseForDiagonalMatrix)
{
    group_fixture f;
    mat::batch_csr<double> a(1, 4, 4, {0, 1, 2, 3, 4}, {0, 1, 2, 3});
    for (index_type i = 0; i < 4; ++i) {
        a.item_values(0)[i] = 2.0 * (i + 1);
    }
    precond::isai<double> pc(a);
    std::vector<double> work(a.nnz());
    auto applier = pc.generate(f.g, blas::item_view(a, 0), f.global(work));
    for (index_type i = 0; i < 4; ++i) {
        EXPECT_NEAR(work[i], 1.0 / (2.0 * (i + 1)), 1e-14);
    }
    std::vector<double> r{2, 4, 6, 8}, z(4);
    applier.apply(f.g, f.global(r), f.global(z));
    EXPECT_NEAR(z[0], 1.0, 1e-14);
    EXPECT_NEAR(z[3], 1.0, 1e-14);
}

TEST(Isai, ResidualVanishesOnPattern)
{
    // Defining ISAI property: rows of (M A - I) are zero at the pattern
    // positions of M's row.
    group_fixture f;
    const auto a = batchlin::work::generate_mechanism<double>(
        batchlin::work::mechanism_by_name("drm19"), 7);
    precond::isai<double> pc(a);
    std::vector<double> work(a.nnz());
    pc.generate(f.g, blas::item_view(a, 0), f.global(work));
    const index_type n = a.rows();
    // Dense M*A.
    const auto ad = mat::to_dense(a);
    std::vector<double> ma(n * n, 0.0);
    for (index_type i = 0; i < n; ++i) {
        for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1]; ++k) {
            const index_type s = a.col_idxs()[k];
            for (index_type j = 0; j < n; ++j) {
                ma[i * n + j] += work[k] * ad.at(0, s, j);
            }
        }
    }
    for (index_type i = 0; i < n; ++i) {
        for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1]; ++k) {
            const index_type j = a.col_idxs()[k];
            const double target = i == j ? 1.0 : 0.0;
            EXPECT_NEAR(ma[i * n + j], target, 1e-8)
                << "pattern position (" << i << "," << j << ")";
        }
    }
}

TEST(Isai, TracksMaxLocalSize)
{
    const auto a = batchlin::work::stencil_3pt<double>(1, 10);
    precond::isai<double> pc(a);
    EXPECT_EQ(pc.max_local_size(), 3);
}

TEST(Isai, RequiresSquareSystems)
{
    mat::batch_csr<double> a(1, 2, 3, {0, 1, 2}, {0, 1});
    EXPECT_THROW(precond::isai<double>{a}, bl::error);
}

TEST(PrecondTypes, ToString)
{
    EXPECT_EQ(precond::to_string(precond::type::none), "none");
    EXPECT_EQ(precond::to_string(precond::type::jacobi), "jacobi");
    EXPECT_EQ(precond::to_string(precond::type::ilu), "ilu");
    EXPECT_EQ(precond::to_string(precond::type::isai), "isai");
}

TEST(PrecondWorkspace, SizesMatchContract)
{
    EXPECT_EQ(precond::jacobi<double>::workspace_elems(50, 400), 50);
    EXPECT_EQ(precond::ilu0<double>::workspace_elems(50, 400), 450);
    EXPECT_EQ(precond::isai<double>::workspace_elems(50, 400), 400);
}
