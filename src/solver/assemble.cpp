#include "solver/assemble.hpp"

#include <algorithm>
#include <variant>

#include "util/error.hpp"

namespace batchlin::solver {

namespace {

template <typename T>
bool same_pattern(const mat::batch_csr<T>& lhs, const mat::batch_csr<T>& rhs)
{
    return lhs.rows() == rhs.rows() && lhs.cols() == rhs.cols() &&
           lhs.nnz() == rhs.nnz() && lhs.row_ptrs() == rhs.row_ptrs() &&
           lhs.col_idxs() == rhs.col_idxs();
}

template <typename T>
bool same_pattern(const mat::batch_ell<T>& lhs, const mat::batch_ell<T>& rhs)
{
    return lhs.rows() == rhs.rows() && lhs.cols() == rhs.cols() &&
           lhs.ell_width() == rhs.ell_width() &&
           lhs.col_idxs() == rhs.col_idxs();
}

template <typename T>
bool same_pattern(const mat::batch_dense<T>& lhs,
                  const mat::batch_dense<T>& rhs)
{
    return lhs.rows() == rhs.rows() && lhs.cols() == rhs.cols();
}

/// Copies the value blocks of every part's matrix into `combined`,
/// batch-major; the shared pattern already lives in `combined`. The parts
/// share one storage mode (can_coalesce checks it), and the combined
/// matrix inherits it, so a compressed request batch solves compressed.
template <typename T, typename MatBatch>
void gather_values(const std::vector<assembly_part<T>>& parts,
                   MatBatch& combined)
{
    if (std::get<MatBatch>(*parts.front().a).storage_mode() ==
        mat::storage_precision::fp32) {
        combined.set_storage_precision(mat::storage_precision::fp32);
        auto out = combined.values_fp32().begin();
        for (const assembly_part<T>& part : parts) {
            const auto& values = std::get<MatBatch>(*part.a).values_fp32();
            out = std::copy(values.begin(), values.end(), out);
        }
        return;
    }
    auto out = combined.values().begin();
    for (const assembly_part<T>& part : parts) {
        const auto& values = std::get<MatBatch>(*part.a).values();
        out = std::copy(values.begin(), values.end(), out);
    }
}

}  // namespace

namespace detail {

template <typename T>
batch_matrix<T> gather_matrix(const std::vector<assembly_part<T>>& parts,
                              index_type total_items)
{
    return std::visit(
        [&](const auto& leader) -> batch_matrix<T> {
            using MatBatch = std::decay_t<decltype(leader)>;
            if constexpr (std::is_same_v<MatBatch, mat::batch_csr<T>>) {
                mat::batch_csr<T> combined(total_items, leader.rows(),
                                           leader.cols(), leader.row_ptrs(),
                                           leader.col_idxs());
                gather_values(parts, combined);
                return combined;
            } else if constexpr (std::is_same_v<MatBatch,
                                                mat::batch_ell<T>>) {
                mat::batch_ell<T> combined(total_items, leader.rows(),
                                           leader.cols(),
                                           leader.ell_width());
                combined.col_idxs() = leader.col_idxs();
                gather_values(parts, combined);
                return combined;
            } else {
                mat::batch_dense<T> combined(total_items, leader.rows(),
                                             leader.cols());
                gather_values(parts, combined);
                return combined;
            }
        },
        *parts.front().a);
}

template <typename T>
index_type validate_assembly(const std::vector<assembly_part<T>>& parts)
{
    BATCHLIN_ENSURE_MSG(!parts.empty(), "nothing to solve");
    index_type total_items = 0;
    const index_type rows =
        std::visit([](const auto& m) { return m.rows(); },
                   *parts.front().a);
    for (const assembly_part<T>& part : parts) {
        BATCHLIN_ENSURE_MSG(part.a != nullptr && part.b != nullptr &&
                                part.x != nullptr,
                            "assembly part missing an operand");
        BATCHLIN_ENSURE_MSG(can_coalesce(*parts.front().a, *part.a),
                            "assembly parts do not share format, "
                            "dimensions, and sparsity pattern");
        const index_type items = part.items();
        BATCHLIN_ENSURE_DIMS(part.b->num_batch_items() == items &&
                                 part.x->num_batch_items() == items,
                             "batch sizes of A, b, x must match");
        BATCHLIN_ENSURE_DIMS(part.b->rows() == rows &&
                                 part.x->rows() == rows &&
                                 part.b->cols() == 1 && part.x->cols() == 1,
                             "vector shapes must match the matrix order");
        total_items += items;
    }
    return total_items;
}

}  // namespace detail

template <typename T>
bool same_shape(const batch_matrix<T>& lhs, const batch_matrix<T>& rhs)
{
    if (lhs.index() != rhs.index()) {
        return false;
    }
    return std::visit(
        [&](const auto& l) {
            using MatBatch = std::decay_t<decltype(l)>;
            return same_pattern(l, std::get<MatBatch>(rhs));
        },
        lhs);
}

template <typename T>
bool can_coalesce(const batch_matrix<T>& lhs, const batch_matrix<T>& rhs)
{
    // Mixing storage modes in one fused launch would force the gather to
    // re-convert values per solve; refuse instead.
    const auto mode = [](const batch_matrix<T>& m) {
        return std::visit([](const auto& c) { return c.storage_mode(); }, m);
    };
    return mode(lhs) == mode(rhs) && same_shape(lhs, rhs);
}

log::batch_log split_log(const log::batch_log& combined, index_type offset,
                         index_type items)
{
    BATCHLIN_ENSURE_DIMS(offset >= 0 && items >= 0 &&
                             offset + items <= combined.num_systems(),
                         "log slice out of range");
    log::batch_log part(items);
    for (index_type i = 0; i < items; ++i) {
        part.record(i, combined.iterations(offset + i),
                    combined.residual_norm(offset + i),
                    combined.status(offset + i));
    }
    return part;
}

void split_log_into(const log::batch_log& combined, index_type offset,
                    index_type items, log::batch_log& out)
{
    BATCHLIN_ENSURE_DIMS(offset >= 0 && items >= 0 &&
                             offset + items <= combined.num_systems(),
                         "log slice out of range");
    if (out.num_systems() != items) {
        out = log::batch_log(items);
    }
    for (index_type i = 0; i < items; ++i) {
        out.record(i, combined.iterations(offset + i),
                   combined.residual_norm(offset + i),
                   combined.status(offset + i));
    }
}

template <typename T>
solve_result solve_coalesced(xpu::queue& q,
                             const std::vector<assembly_part<T>>& parts,
                             const solve_options& opts)
{
    BATCHLIN_ENSURE_MSG(!opts.record_history,
                        "per-iteration history is not supported for "
                        "coalesced solves");
    const index_type total_items = detail::validate_assembly(parts);
    const index_type rows =
        std::visit([](const auto& m) { return m.rows(); },
                   *parts.front().a);

    if (parts.size() == 1) {
        // One request already is a batch: no gather/scatter needed, and
        // the result is trivially identical to a solo solve.
        return solve(q, *parts.front().a, *parts.front().b,
                     *parts.front().x, opts);
    }

    const batch_matrix<T> a = detail::gather_matrix(parts, total_items);
    mat::batch_dense<T> b(total_items, rows, 1);
    mat::batch_dense<T> x(total_items, rows, 1);
    auto b_out = b.values().begin();
    auto x_out = x.values().begin();
    for (const assembly_part<T>& part : parts) {
        b_out = std::copy(part.b->values().begin(), part.b->values().end(),
                          b_out);
        x_out = std::copy(part.x->values().begin(), part.x->values().end(),
                          x_out);
    }

    solve_result result = solve(q, a, b, x, opts);

    auto x_in = x.values().begin();
    for (const assembly_part<T>& part : parts) {
        std::copy_n(x_in, part.x->values().size(),
                    part.x->values().begin());
        x_in += part.x->values().size();
    }
    return result;
}

#define BATCHLIN_INSTANTIATE_ASSEMBLE(T)                                    \
    template bool same_shape<T>(const batch_matrix<T>&,                     \
                                const batch_matrix<T>&);                    \
    template bool can_coalesce<T>(const batch_matrix<T>&,                   \
                                  const batch_matrix<T>&);                  \
    template solve_result solve_coalesced<T>(                               \
        xpu::queue&, const std::vector<assembly_part<T>>&,                  \
        const solve_options&);                                              \
    template index_type detail::validate_assembly<T>(                       \
        const std::vector<assembly_part<T>>&);                              \
    template batch_matrix<T> detail::gather_matrix<T>(                      \
        const std::vector<assembly_part<T>>&, index_type)

BATCHLIN_INSTANTIATE_ASSEMBLE(float);
BATCHLIN_INSTANTIATE_ASSEMBLE(double);

}  // namespace batchlin::solver
