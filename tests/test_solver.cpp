// Integration tests of the batched solvers through the multi-level
// dispatch: every legal (solver x format x preconditioner) combination of
// Table 3 must converge to the requested tolerance, verified against the
// explicit host-side residual. Parameterized suites sweep the combination
// space; targeted tests cover initial guesses, per-system monitoring,
// failure injection, and the direct BatchTrsv.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "matrix/conversions.hpp"
#include "solver/dispatch.hpp"
#include "solver/residual.hpp"
#include "solver/trsv.hpp"
#include "util/error.hpp"
#include "workload/chemistry.hpp"
#include "workload/replicate.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using batchlin::index_type;
namespace mat = batchlin::mat;
namespace solver = batchlin::solver;
namespace precond = batchlin::precond;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;

namespace {

constexpr index_type kBatch = 24;
constexpr index_type kRows = 48;

solver::batch_matrix<double> spd_in_format(solver::matrix_format f)
{
    const auto csr = work::stencil_3pt<double>(kBatch, kRows, 11);
    switch (f) {
    case solver::matrix_format::csr:
        return csr;
    case solver::matrix_format::ell:
        return mat::to_ell(csr);
    case solver::matrix_format::dense:
        return mat::to_dense(csr);
    }
    return csr;
}

solver::batch_matrix<double> chem_in_format(solver::matrix_format f)
{
    const auto unique = work::generate_mechanism<double>(
        work::mechanism_by_name("drm19"), 3);
    const auto csr = work::replicate(unique, kBatch, 1e-3, 5);
    switch (f) {
    case solver::matrix_format::csr:
        return csr;
    case solver::matrix_format::ell:
        return mat::to_ell(csr);
    case solver::matrix_format::dense:
        return mat::to_dense(csr);
    }
    return csr;
}

index_type rows_of(const solver::batch_matrix<double>& a)
{
    return std::visit([](const auto& m) { return m.rows(); }, a);
}

void expect_solved(const solver::batch_matrix<double>& a,
                   const mat::batch_dense<double>& b,
                   const mat::batch_dense<double>& x,
                   const solver::solve_result& result, double tol)
{
    EXPECT_EQ(result.log.num_converged(), b.num_batch_items());
    const auto rel = solver::relative_residual_norms(a, b, x);
    for (index_type i = 0; i < static_cast<index_type>(rel.size()); ++i) {
        EXPECT_LE(rel[i], tol * 50) << "system " << i;
    }
}

}  // namespace

// ---------------------------------------------------------------------
// Parameterized sweep: solver x format x preconditioner (Table 3).
// ---------------------------------------------------------------------

using combo = std::tuple<solver::solver_type, solver::matrix_format,
                         precond::type>;

class SolverCombos : public ::testing::TestWithParam<combo> {};

TEST_P(SolverCombos, ConvergesToTolerance)
{
    const auto [solver_kind, format, pc] = GetParam();
    // CG needs SPD input; the others get the non-symmetric chemistry batch.
    const bool spd = solver_kind == solver::solver_type::cg;
    const solver::batch_matrix<double> a =
        spd ? spd_in_format(format) : chem_in_format(format);
    const index_type rows = rows_of(a);
    const auto b = work::random_rhs<double>(kBatch, rows, 3);
    mat::batch_dense<double> x(kBatch, rows, 1);

    solver::solve_options opts;
    opts.solver = solver_kind;
    opts.preconditioner = pc;
    opts.criterion = stop::relative(1e-10, 500);
    opts.gmres_restart = 20;

    xpu::queue q(xpu::make_sycl_policy());
    const solver::solve_result result = solver::solve(q, a, b, x, opts);
    expect_solved(a, b, x, result, 1e-10);
}

TEST_P(SolverCombos, ConvergesUnderCudaExecutionModel)
{
    // The same combination must solve identically under the CUDA policy
    // (warp-32 sub-groups, warp-only reductions, §3.2) — the paper's
    // portability claim at the algorithm level.
    const auto [solver_kind, format, pc] = GetParam();
    const bool spd = solver_kind == solver::solver_type::cg;
    const solver::batch_matrix<double> a =
        spd ? spd_in_format(format) : chem_in_format(format);
    const index_type rows = rows_of(a);
    const auto b = work::random_rhs<double>(kBatch, rows, 3);
    mat::batch_dense<double> x(kBatch, rows, 1);

    solver::solve_options opts;
    opts.solver = solver_kind;
    opts.preconditioner = pc;
    opts.criterion = stop::relative(1e-10, 500);
    opts.gmres_restart = 20;

    xpu::queue q(xpu::make_cuda_policy(192 * 1024));
    const solver::solve_result result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.config.sub_group_size, 32);
    EXPECT_EQ(result.config.reduction, xpu::reduce_path::sub_group);
    expect_solved(a, b, x, result, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Table3, SolverCombos,
    ::testing::Values(
        // CG on all formats, identity + jacobi; csr also ilu/isai.
        combo{solver::solver_type::cg, solver::matrix_format::csr,
              precond::type::none},
        combo{solver::solver_type::cg, solver::matrix_format::csr,
              precond::type::jacobi},
        combo{solver::solver_type::cg, solver::matrix_format::csr,
              precond::type::ilu},
        combo{solver::solver_type::cg, solver::matrix_format::csr,
              precond::type::isai},
        combo{solver::solver_type::cg, solver::matrix_format::ell,
              precond::type::none},
        combo{solver::solver_type::cg, solver::matrix_format::ell,
              precond::type::jacobi},
        combo{solver::solver_type::cg, solver::matrix_format::dense,
              precond::type::none},
        combo{solver::solver_type::cg, solver::matrix_format::dense,
              precond::type::jacobi},
        // BiCGSTAB over the same grid.
        combo{solver::solver_type::bicgstab, solver::matrix_format::csr,
              precond::type::none},
        combo{solver::solver_type::bicgstab, solver::matrix_format::csr,
              precond::type::jacobi},
        combo{solver::solver_type::bicgstab, solver::matrix_format::csr,
              precond::type::ilu},
        combo{solver::solver_type::bicgstab, solver::matrix_format::csr,
              precond::type::isai},
        combo{solver::solver_type::bicgstab, solver::matrix_format::ell,
              precond::type::jacobi},
        combo{solver::solver_type::bicgstab, solver::matrix_format::dense,
              precond::type::jacobi},
        // GMRES over the same grid.
        combo{solver::solver_type::gmres, solver::matrix_format::csr,
              precond::type::none},
        combo{solver::solver_type::gmres, solver::matrix_format::csr,
              precond::type::jacobi},
        combo{solver::solver_type::gmres, solver::matrix_format::csr,
              precond::type::ilu},
        combo{solver::solver_type::gmres, solver::matrix_format::csr,
              precond::type::isai},
        combo{solver::solver_type::gmres, solver::matrix_format::ell,
              precond::type::jacobi},
        combo{solver::solver_type::gmres, solver::matrix_format::dense,
              precond::type::jacobi}),
    [](const ::testing::TestParamInfo<combo>& tpi) {
        return solver::to_string(std::get<0>(tpi.param)) + "_" +
               solver::to_string(std::get<1>(tpi.param)) + "_" +
               precond::to_string(std::get<2>(tpi.param));
    });

// ---------------------------------------------------------------------
// Parameterized sweep: launch-configuration axes (§3.6).
// ---------------------------------------------------------------------

using launch_combo = std::tuple<index_type, xpu::reduce_path>;

class LaunchSweep : public ::testing::TestWithParam<launch_combo> {};

TEST_P(LaunchSweep, SameAnswerForEveryLaunchConfig)
{
    const auto [sub_group, reduction] = GetParam();
    const auto a_csr = work::stencil_3pt<double>(kBatch, 50, 17);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(kBatch, 50, 23);
    mat::batch_dense<double> x(kBatch, 50, 1);

    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-11, 400);
    opts.sub_group_size = sub_group;
    opts.reduction = reduction;

    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.config.sub_group_size, sub_group);
    EXPECT_EQ(result.config.reduction, reduction);
    EXPECT_EQ(result.config.work_group_size,
              bl::round_up(50, sub_group));
    expect_solved(a, b, x, result, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    SubGroupAndReduction, LaunchSweep,
    ::testing::Combine(::testing::Values<index_type>(16, 32),
                       ::testing::Values(xpu::reduce_path::group,
                                         xpu::reduce_path::sub_group)),
    [](const ::testing::TestParamInfo<launch_combo>& tpi) {
        const bool grp = std::get<1>(tpi.param) == xpu::reduce_path::group;
        return "sg" + std::to_string(std::get<0>(tpi.param)) +
               (grp ? "_group_reduce" : "_subgroup_reduce");
    });

// ---------------------------------------------------------------------
// Targeted behaviours.
// ---------------------------------------------------------------------

TEST(SolverBehaviour, GoodInitialGuessCutsIterations)
{
    // The paper's central motivation (§1): an iterative solver can reuse
    // the previous solution of a similar system as the initial guess.
    const auto a_csr = work::stencil_3pt<double>(8, 64, 3);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(8, 64, 4);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.criterion = stop::relative(1e-10, 500);
    xpu::queue q(xpu::make_sycl_policy());

    mat::batch_dense<double> x_cold(8, 64, 1);
    const auto cold = solver::solve(q, a, b, x_cold, opts);

    mat::batch_dense<double> x_warm = x_cold;  // the converged solution
    const auto warm = solver::solve(q, a, b, x_warm, opts);
    EXPECT_LT(warm.log.max_iterations(), 3);
    EXPECT_LT(warm.log.max_iterations(), cold.log.min_iterations());
}

TEST(SolverBehaviour, PerSystemIterationCountsDiffer)
{
    // Systems with different conditioning must be monitored individually.
    auto a_csr = work::stencil_3pt<double>(4, 64, 9);
    // Make item 2 much better conditioned (strong diagonal).
    for (index_type i = 0; i < 64; ++i) {
        for (index_type k = a_csr.row_ptrs()[i]; k < a_csr.row_ptrs()[i + 1];
             ++k) {
            if (a_csr.col_idxs()[k] == i) {
                a_csr.item_values(2)[k] += 10.0;
            }
        }
    }
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(4, 64, 2);
    mat::batch_dense<double> x(4, 64, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.criterion = stop::relative(1e-10, 500);
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_LT(result.log.iterations(2), result.log.iterations(0));
    EXPECT_EQ(result.log.num_converged(), 4);
}

TEST(SolverBehaviour, MaxIterationsReportsNotConverged)
{
    const auto a_csr = work::stencil_3pt<double>(4, 128, 21);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(4, 128, 22);
    mat::batch_dense<double> x(4, 128, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.criterion = stop::relative(1e-12, 3);  // starve the budget
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), 0);
    for (index_type i = 0; i < 4; ++i) {
        EXPECT_EQ(result.log.iterations(i), 3);
        EXPECT_GT(result.log.residual_norm(i), 0.0);
    }
}

TEST(SolverBehaviour, ZeroRhsConvergesImmediately)
{
    const auto a_csr = work::stencil_3pt<double>(2, 32, 5);
    const solver::batch_matrix<double> a = a_csr;
    mat::batch_dense<double> b(2, 32, 1);  // zero rhs
    mat::batch_dense<double> x(2, 32, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.criterion = stop::relative(1e-10, 100);
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), 2);
    EXPECT_EQ(result.log.max_iterations(), 0);
    for (double v : x.values()) {
        EXPECT_EQ(v, 0.0);
    }
}

TEST(SolverBehaviour, AbsoluteCriterionHonored)
{
    const auto a_csr = work::stencil_3pt<double>(4, 40, 13);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(4, 40, 14);
    mat::batch_dense<double> x(4, 40, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.criterion = stop::absolute(1e-8, 500);
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), 4);
    const auto res = solver::residual_norms(a, b, x);
    for (double r : res) {
        EXPECT_LE(r, 1e-7);
    }
}

TEST(SolverBehaviour, FloatPrecisionSolves)
{
    const auto a_csr = work::stencil_3pt<float>(8, 32, 31);
    const solver::batch_matrix<float> a = a_csr;
    const auto b = work::random_rhs<float>(8, 32, 32);
    mat::batch_dense<float> x(8, 32, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-5, 300);
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), 8);
    const auto rel = solver::relative_residual_norms(a, b, x);
    for (double r : rel) {
        EXPECT_LE(r, 1e-4);
    }
}

TEST(SolverBehaviour, CudaPolicySolvesIdentically)
{
    // The CUDA execution model (warp 32, no group reduction) must give the
    // same answers — only the performance counters differ (§3.2).
    const auto a_csr = work::stencil_3pt<double>(8, 48, 41);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(8, 48, 42);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-11, 400);

    mat::batch_dense<double> x_sycl(8, 48, 1);
    xpu::queue q_sycl(xpu::make_sycl_policy());
    const auto r_sycl = solver::solve(q_sycl, a, b, x_sycl, opts);

    mat::batch_dense<double> x_cuda(8, 48, 1);
    xpu::queue q_cuda(xpu::make_cuda_policy(192 * 1024));
    const auto r_cuda = solver::solve(q_cuda, a, b, x_cuda, opts);

    EXPECT_EQ(r_cuda.config.sub_group_size, 32);
    EXPECT_EQ(r_cuda.config.reduction, xpu::reduce_path::sub_group);
    EXPECT_EQ(r_sycl.log.num_converged(), 8);
    EXPECT_EQ(r_cuda.log.num_converged(), 8);
    const auto rel = solver::relative_residual_norms(a, b, x_cuda);
    for (double r : rel) {
        EXPECT_LE(r, 1e-9);
    }
}

TEST(SolverBehaviour, RangeSolveTouchesOnlyRange)
{
    const auto a_csr = work::stencil_3pt<double>(10, 32, 8);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(10, 32, 9);
    mat::batch_dense<double> x(10, 32, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.criterion = stop::relative(1e-10, 300);
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve_range(q, a, b, x, opts, {3, 7});
    EXPECT_EQ(result.log.num_converged(), 4);
    // Systems outside the range keep the zero guess.
    for (index_type i = 0; i < 32; ++i) {
        EXPECT_EQ(x.at(0, i, 0), 0.0);
        EXPECT_EQ(x.at(9, i, 0), 0.0);
        EXPECT_NE(x.at(4, i, 0), 0.0);
    }
}

TEST(Trsv, SolvesLowerTriangularExactly)
{
    // Lower-triangular pattern: diag + subdiagonal.
    std::vector<index_type> rp{0, 1, 3, 5};
    std::vector<index_type> ci{0, 0, 1, 1, 2};
    mat::batch_csr<double> a_csr(2, 3, 3, rp, ci);
    const double v0[] = {2, 1, 3, -1, 4};
    const double v1[] = {1, 2, 2, 3, 5};
    std::copy(std::begin(v0), std::end(v0), a_csr.item_values(0));
    std::copy(std::begin(v1), std::end(v1), a_csr.item_values(1));
    const solver::batch_matrix<double> a = a_csr;
    auto b = work::random_rhs<double>(2, 3, 6);
    mat::batch_dense<double> x(2, 3, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::trsv;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), 2);
    const auto res = solver::residual_norms(a, b, x);
    EXPECT_LE(res[0], 1e-13);
    EXPECT_LE(res[1], 1e-13);
}

TEST(Trsv, SolvesUpperTriangularExactly)
{
    std::vector<index_type> rp{0, 2, 4, 5};
    std::vector<index_type> ci{0, 2, 1, 2, 2};
    mat::batch_csr<double> a_csr(1, 3, 3, rp, ci);
    const double v0[] = {3, 1, 2, -2, 5};
    std::copy(std::begin(v0), std::end(v0), a_csr.item_values(0));
    const solver::batch_matrix<double> a = a_csr;
    auto b = work::random_rhs<double>(1, 3, 6);
    mat::batch_dense<double> x(1, 3, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::trsv;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), 1);
    EXPECT_LE(solver::residual_norms(a, b, x)[0], 1e-13);
}

TEST(Trsv, DetectsTriangleAndRejectsGeneral)
{
    const auto general = work::stencil_3pt<double>(1, 8);
    EXPECT_THROW(solver::detect_triangle(general),
                 bl::unsupported_combination);
    std::vector<index_type> rp{0, 1, 3};
    std::vector<index_type> ci{0, 0, 1};
    const mat::batch_csr<double> lower(1, 2, 2, rp, ci);
    EXPECT_EQ(solver::detect_triangle(lower), solver::triangle::lower);
}

TEST(Dispatch, RejectsIllegalCombinations)
{
    const auto a_ell = mat::to_ell(work::stencil_3pt<double>(2, 16));
    const solver::batch_matrix<double> a = a_ell;
    const auto b = work::random_rhs<double>(2, 16, 1);
    mat::batch_dense<double> x(2, 16, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = precond::type::ilu;
    xpu::queue q(xpu::make_sycl_policy());
    EXPECT_THROW(solver::solve(q, a, b, x, opts),
                 bl::unsupported_combination);
    opts.preconditioner = precond::type::isai;
    EXPECT_THROW(solver::solve(q, a, b, x, opts),
                 bl::unsupported_combination);
    // TRSV on a non-CSR variant.
    opts.solver = solver::solver_type::trsv;
    opts.preconditioner = precond::type::none;
    EXPECT_THROW(solver::solve(q, a, b, x, opts), bl::error);
}

TEST(Dispatch, RejectsDimensionMismatches)
{
    const auto a_csr = work::stencil_3pt<double>(2, 16);
    const solver::batch_matrix<double> a = a_csr;
    solver::solve_options opts;
    xpu::queue q(xpu::make_sycl_policy());
    mat::batch_dense<double> x(2, 16, 1);
    {
        const auto b_wrong_items = work::random_rhs<double>(3, 16, 1);
        EXPECT_THROW(solver::solve(q, a, b_wrong_items, x, opts),
                     bl::dimension_mismatch);
    }
    {
        const auto b_wrong_rows = work::random_rhs<double>(2, 8, 1);
        EXPECT_THROW(solver::solve(q, a, b_wrong_rows, x, opts),
                     bl::dimension_mismatch);
    }
    {
        const auto b = work::random_rhs<double>(2, 16, 1);
        EXPECT_THROW(solver::solve_range(q, a, b, x, opts, {0, 5}),
                     bl::dimension_mismatch);
    }
}

TEST(Dispatch, SingleFusedLaunchPerSolve)
{
    const auto a_csr = work::stencil_3pt<double>(16, 32, 2);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(16, 32, 3);
    mat::batch_dense<double> x(16, 32, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::jacobi;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    // §3.4: everything — setup, preconditioner generation, iteration —
    // in exactly one kernel launch.
    EXPECT_EQ(result.stats.kernel_launches, 1);
    EXPECT_EQ(result.stats.groups_launched, 16);
    EXPECT_GT(result.stats.total_iterations, 0.0);
}
