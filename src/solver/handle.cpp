#include "solver/handle.hpp"

#include "solver/launch.hpp"

namespace batchlin {

namespace {

/// Read-only bytes one system contributes: matrix values plus rhs (the
/// operands the paper observes being served from L3, §4.4). The value
/// bytes come from the matrix's own storage accounting, so fp32-storage
/// batches report the halved footprint they actually stream — this is
/// what keeps the roofline honest under mixed precision.
template <typename T>
size_type constant_bytes_per_system(const solver::batch_matrix<T>& a)
{
    return std::visit(
        [](const auto& m) -> size_type {
            return m.value_bytes_per_item() +
                   static_cast<size_type>(m.rows()) *
                       static_cast<size_type>(sizeof(T));
        },
        a);
}

}  // namespace

template <typename T>
perf::solve_profile make_profile(const solver::solve_result& result,
                                 const solver::batch_matrix<T>& a,
                                 index_type target_items)
{
    const index_type measured =
        std::visit([](const auto& m) { return m.num_batch_items(); }, a);
    const index_type rows =
        std::visit([](const auto& m) { return m.rows(); }, a);
    BATCHLIN_ENSURE_MSG(measured > 0, "empty measurement batch");
    BATCHLIN_ENSURE_MSG(target_items > 0, "empty target batch");

    perf::solve_profile profile;
    const double factor =
        static_cast<double>(target_items) / static_cast<double>(measured);
    profile.totals = perf::scale_counters(result.stats, factor);
    profile.num_systems = target_items;
    profile.work_group_size = result.config.work_group_size;
    profile.thread_utilization =
        solver::thread_utilization(result.config, rows);
    profile.constant_footprint_per_system = constant_bytes_per_system(a);
    profile.fp64 = std::is_same_v<T, double>;
    return profile;
}

template perf::solve_profile make_profile<float>(
    const solver::solve_result&, const solver::batch_matrix<float>&,
    index_type);
template perf::solve_profile make_profile<double>(
    const solver::solve_result&, const solver::batch_matrix<double>&,
    index_type);

}  // namespace batchlin
