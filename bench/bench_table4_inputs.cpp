// Table 4 reproduction: the input-data reference.
//
// Prints the generated workload statistics next to the paper's values and
// fails (non-zero exit) if any generated quantity deviates from Table 4.
#include <cstdio>
#include <cstdlib>

#include "common.hpp"
#include "matrix/properties.hpp"

using namespace bench;

int main()
{
    std::printf("Table 4: reference for data inputs (generated vs paper)\n\n");
    std::printf("%-12s | %10s | %12s | %12s | %8s | %8s\n", "input case",
                "# unique", "matrix size", "# nnz/matrix", "sym?",
                "dd?");
    rule(78);
    std::printf("%-12s | %10s | %12s | %12s | %8s | %8s\n", "3pt stencil",
                "-", "n x n", "3 x n_rows", "yes", "yes");

    bool ok = true;
    for (const work::mechanism& mech : work::pele_mechanisms()) {
        const auto a = work::generate_mechanism<double>(mech);
        const auto stats = mat::analyze_pattern(a);
        const bool sym = mat::is_symmetric(a, 0, 1e-12);
        const bool dd = mat::is_diagonally_dominant(a, 0);
        std::printf("%-12s | %10d | %5d x %-5d | %12d | %8s | %8s\n",
                    mech.name.c_str(), a.num_batch_items(), stats.rows,
                    stats.cols, stats.nnz, sym ? "yes" : "no",
                    dd ? "yes" : "no");
        ok = ok && a.num_batch_items() == mech.num_unique &&
             stats.rows == mech.rows && stats.nnz == mech.nnz && !sym;
    }
    rule(78);
    std::printf("paper Table 4:  drm19 67/22x22/438, gri12 73/33x33/978, "
                "gri30 90/54x54/2560,\n                dodecane_lu "
                "78/54x54/2332, isooctane 72/144x144/6135\n");
    std::printf("generated stats %s the paper's Table 4\n",
                ok ? "MATCH" : "DO NOT MATCH");
    return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
