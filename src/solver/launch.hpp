// Launch configuration selection (paper §3.6).
//
// The work-group size is chosen at runtime from the number of rows: the
// smallest multiple of the sub-group size that covers the rows (capped by
// the device maximum). The sub-group size is 16 for small matrices and 32
// for large ones on the PVC (CUDA devices only have 32); the reduction
// strategy switches from sub-group shuffles to the work-group primitive
// once the system spans multiple sub-groups. All thresholds live in the
// execution policy because they are device-specific tuning knobs.
#pragma once

#include "util/math.hpp"
#include "xpu/policy.hpp"

namespace batchlin::solver {

/// Resolved launch parameters for one batched solver kernel.
struct kernel_config {
    index_type work_group_size = 0;
    index_type sub_group_size = 0;
    xpu::reduce_path reduction = xpu::reduce_path::group;
};

/// Applies the §3.6 heuristics. `sub_group_override` forces a sub-group
/// size (0 = automatic); `reduction_override` similarly pins the reduction
/// path for the ablation benchmarks.
kernel_config choose_launch_config(const xpu::exec_policy& policy,
                                   index_type rows,
                                   index_type sub_group_override = 0,
                                   const xpu::reduce_path* reduction_override =
                                       nullptr);

/// Fraction of scheduled work-items that map to matrix rows; < 1 when the
/// round-up to the sub-group size pads the work-group (feeds the
/// performance model's utilization term).
double thread_utilization(const kernel_config& config, index_type rows);

}  // namespace batchlin::solver
