// Ablation: value-type precision (the precision axis of the multi-level
// dispatch, §3.3/§3.4).
//
// Single precision halves every traffic stream and doubles the FP peak,
// but the iteration count can grow when the tolerance approaches the
// format's resolution — the reason the paper keeps precision a dispatch
// axis rather than a fixed choice. The bench runs the PeleLM inputs in
// fp64 and fp32 at tolerances inside and near the fp32 limit.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "solver/residual.hpp"

using namespace bench;

namespace {

template <typename T>
struct run_report {
    double ms = 0.0;
    double iters = 0.0;
    index_type converged = 0;
    index_type items = 0;
    double worst_true_residual = 0.0;
};

template <typename T>
run_report<T> run_precision(const perf::device_spec& device,
                            const work::mechanism& mech, double tol,
                            index_type target)
{
    const index_type items = measurement_batch(mech.num_unique);
    const auto a_csr = work::generate_mechanism_batch<T>(mech, items);
    const solver::batch_matrix<T> a = a_csr;
    const auto b = work::mechanism_rhs<T>(items, mech.rows, 77);
    mat::batch_dense<T> x(items, mech.rows, 1);

    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(tol, 200);
    xpu::queue q(device.make_policy());
    const solver::solve_result result = solver::solve(q, a, b, x, opts);

    perf::solve_profile profile =
        batchlin::make_profile<T>(result, a, target);
    run_report<T> rep;
    rep.ms = perf::estimate_time(device, profile).total_seconds * 1e3;
    rep.iters = result.log.mean_iterations();
    rep.converged = result.log.num_converged();
    rep.items = items;
    // The solver monitors the recurrence residual; in fp32 that can pass
    // a tolerance the TRUE residual cannot reach. Report the truth.
    for (const double r : solver::relative_residual_norms(a, b, x)) {
        rep.worst_true_residual = std::max(rep.worst_true_residual, r);
    }
    return rep;
}

}  // namespace

int main()
{
    const index_type target = 1 << 17;
    const perf::device_spec device = perf::pvc_1s();
    std::printf("Ablation: fp64 vs fp32 batched solves "
                "(BatchBicgstab+Jacobi, 2^17 matrices, %s)\n\n",
                device.name.c_str());
    for (const double tol : {1e-6, 1e-10}) {
        std::printf("relative tolerance %.0e:\n", tol);
        std::printf("%-12s | %11s %8s %11s | %11s %8s %11s | %8s\n",
                    "input", "fp64 [ms]", "iters", "true res", "fp32 [ms]",
                    "iters", "true res", "speedup");
        rule(96);
        for (const work::mechanism& mech : work::pele_mechanisms()) {
            const auto d =
                run_precision<double>(device, mech, tol, target);
            const auto f = run_precision<float>(device, mech, tol, target);
            std::printf(
                "%-12s | %11.3f %8.1f %11.1e | %11.3f %8.1f %11.1e "
                "| %7.2fx\n",
                mech.name.c_str(), d.ms, d.iters, d.worst_true_residual,
                f.ms, f.iters, f.worst_true_residual, d.ms / f.ms);
        }
        std::printf("\n");
    }
    std::printf(
        "(fp32 halves the streaming traffic, but the transaction-granular\n"
        " SLM gathers do not shrink with the element size, so the modeled\n"
        " gain is modest. More important: at 1e-10 the fp32 recurrence\n"
        " residual claims convergence while the TRUE residual stalls near\n"
        " the fp32 resolution — precision must stay a dispatch axis.)\n");
    return 0;
}
