// serve::solve_service — a dynamic-batching solve service.
//
// The paper's throughput result (§3.4) comes from fusing many small
// systems into one kernel launch. A caller with a *stream* of independent
// requests cannot exploit that through single-shot `solve` calls, so this
// subsystem does what an inference server's dynamic batcher does for
// model requests: `submit` enqueues a request and returns a future;
// worker threads coalesce compatible requests (same precision, format,
// sparsity pattern, and solve options) into one fused launch under a
// time/size window (`max_batch`, `max_wait`); results and per-system
// convergence records are scattered back per request.
//
// Threading model: one mutex guards the admission queue and statistics;
// each worker thread owns a private `xpu::queue`, so the pooled launch
// resources (arenas, counter blocks, spill scratch) are never shared —
// the contract `xpu::queue` documents and debug-asserts. Admission is
// bounded: when `max_queue_systems` is reached, requests are rejected or
// the submitter blocks, per `overflow_policy`. Per-request deadlines are
// honored before launch: an expired request completes with
// `request_status::expired` and is never solved. `stop` drains gracefully
// (queued work is still solved; batching windows are cut short).
//
// Head-of-line note: the batcher is FIFO per worker — a leader holding
// its window can delay queued requests of a different coalescing key by
// up to `max_wait`; add workers to bound that.
#pragma once

#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "serve/stats.hpp"
#include "solver/assemble.hpp"
#include "solver/options.hpp"
#include "util/error.hpp"
#include "xpu/policy.hpp"
#include "xpu/queue.hpp"

namespace batchlin::serve {

/// Terminal state of one request.
enum class request_status {
    /// Solved; `x`, `log`, and the timing fields are valid.
    ok,
    /// Refused by admission control; never queued.
    rejected,
    /// Deadline passed before the batch launched; never solved.
    expired,
    /// The batch solve threw; `error` carries the message.
    failed,
};

std::string to_string(request_status status);

/// One asynchronous solve request: A x = b per batch item, with `x`
/// carrying the initial guess (and, in the reply, the solution). A
/// request may itself hold a batch of systems; they stay contiguous in
/// the fused launch.
template <typename T>
struct solve_request {
    solver::batch_matrix<T> a;
    mat::batch_dense<T> b;
    mat::batch_dense<T> x;
    solver::solve_options opts{};
    /// Relative deadline measured from submit; zero means none.
    std::chrono::microseconds deadline{0};
};

/// What the ticket resolves to. For non-ok statuses `x` returns the
/// initial guess unchanged and `log` is empty.
template <typename T>
struct solve_reply {
    request_status status = request_status::ok;
    /// Failure message when status == failed.
    std::string error;
    /// The request's matrix and right-hand side, handed back so a
    /// high-rate caller can recycle the storage for its next request
    /// instead of rebuilding it (`a` is read-only during the solve).
    solver::batch_matrix<T> a;
    mat::batch_dense<T> b;
    mat::batch_dense<T> x;
    log::batch_log log;
    /// Systems in the fused launch this request rode in.
    index_type fused_systems = 0;
    /// Solve attempts this request's data went through: 1 is the happy
    /// path; more means launch faults were retried (and possibly the
    /// batch degraded to solo solves) before this reply resolved.
    index_type attempts = 1;
    /// Submit-to-launch waiting time.
    double queue_seconds = 0.0;
    /// Wall time of the fused solve.
    double solve_seconds = 0.0;
};

/// What to do with a submit that finds the bounded queue full.
enum class overflow_policy {
    /// Complete the ticket immediately with `request_status::rejected`.
    reject,
    /// Block the submitting thread until space frees up (or the service
    /// stops accepting, which rejects).
    block,
};

struct service_config {
    /// Worker threads; each owns a private `xpu::queue`.
    int workers = 2;
    /// Most systems one fused launch may carry.
    index_type max_batch = 64;
    /// How long a batch leader waits for companions before launching.
    std::chrono::microseconds max_wait{200};
    /// Admission bound, counted in systems (a batched request counts its
    /// batch size).
    size_type max_queue_systems = 4096;
    overflow_policy on_full = overflow_policy::reject;
    /// Skip zero-filling the spill scratch on the hot path (the solver
    /// kernels overwrite every spilled element before reading it; the
    /// equivalence tests pin down that replies are bit-identical either
    /// way).
    bool skip_spill_zeroing = true;
    /// Sliding-window size of the latency percentile estimator.
    std::size_t latency_window = 8192;
    /// Additional solve attempts after a `xpu::device_error` launch
    /// failure before the batch degrades to per-request solo solves.
    /// Injected faults are keyed by the worker queue's launch counter, so
    /// a retry is a fresh launch and typically clears a transient fault.
    index_type launch_retries = 2;
    /// Backoff before the first retry; doubles per retry up to
    /// `max_retry_backoff` (capped exponential backoff).
    std::chrono::microseconds retry_backoff{50};
    std::chrono::microseconds max_retry_backoff{1000};
    /// Circuit breaker: when at least `breaker_window` fused launches
    /// have completed and the faulted fraction among the last window
    /// reaches this ratio, coalescing is suspended — workers solve
    /// requests solo for `breaker_cooldown` launches, so one poisoned
    /// tenant stops taking whole batches down with it.
    double breaker_fault_ratio = 0.5;
    std::uint32_t breaker_window = 16;
    std::uint32_t breaker_cooldown = 32;
};

namespace detail {

/// Word-at-a-time FNV-1a variant: one xor-multiply per 64-bit value plus
/// a final avalanche, not one per byte — `submit` hashes the full sparsity
/// pattern on every request, so this sits on the serving hot path.
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    h *= 1099511628211ull;
    h ^= h >> 32;
    return h;
}

inline std::uint64_t hash_span(std::uint64_t h,
                               const std::vector<index_type>& values)
{
    for (const index_type v : values) {
        h ^= static_cast<std::uint64_t>(v);
        h *= 1099511628211ull;
    }
    h ^= h >> 32;
    return h;
}

/// Grouping key of the dynamic batcher: precision, format, dimensions,
/// sparsity pattern, and the full option set. Two requests may share a
/// fused launch only if their keys match; the batcher additionally
/// verifies exact pattern/options equality before coalescing, so a hash
/// collision degrades batching, never correctness.
template <typename T>
std::uint64_t coalesce_key(const solver::batch_matrix<T>& a,
                           const solver::solve_options& opts)
{
    std::uint64_t h = 14695981039346656037ull;
    h = hash_mix(h, sizeof(T));
    h = hash_mix(h, static_cast<std::uint64_t>(a.index()));
    std::visit(
        [&](const auto& m) {
            using MatBatch = std::decay_t<decltype(m)>;
            h = hash_mix(h, static_cast<std::uint64_t>(m.rows()));
            h = hash_mix(h, static_cast<std::uint64_t>(m.cols()));
            if constexpr (std::is_same_v<MatBatch, mat::batch_csr<T>>) {
                h = hash_span(h, m.row_ptrs());
                h = hash_span(h, m.col_idxs());
            } else if constexpr (std::is_same_v<MatBatch,
                                                mat::batch_ell<T>>) {
                h = hash_mix(h, static_cast<std::uint64_t>(m.ell_width()));
                h = hash_span(h, m.col_idxs());
            }
        },
        a);
    h = hash_mix(h, static_cast<std::uint64_t>(opts.solver));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.preconditioner));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.criterion.type));
    h = hash_mix(h, std::bit_cast<std::uint64_t>(opts.criterion.tolerance));
    h = hash_mix(h,
                 static_cast<std::uint64_t>(opts.criterion.max_iterations));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.gmres_restart));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.block_jacobi_size));
    h = hash_mix(h,
                 std::bit_cast<std::uint64_t>(opts.richardson_relaxation));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.slm));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.sub_group_size));
    h = hash_mix(h, opts.reduction
                        ? static_cast<std::uint64_t>(*opts.reduction) + 1
                        : 0);
    h = hash_mix(h, static_cast<std::uint64_t>(opts.trsv_triangle));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.zero_spill));
    return h;
}

/// A queued request of one precision, with the promise its ticket waits
/// on.
template <typename T>
struct typed_pending {
    solve_request<T> request;
    std::promise<solve_reply<T>> promise;
};

struct pending_entry {
    std::uint64_t key = 0;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
    index_type items = 0;
    std::variant<typed_pending<double>, typed_pending<float>> body;
};

}  // namespace detail

/// The dynamic-batching solve service. See the file comment for the
/// threading model and batching semantics.
class solve_service {
public:
    template <typename T>
    using ticket = std::future<solve_reply<T>>;

    /// Spins up the worker pool; each worker owns an `xpu::queue` built
    /// from `policy`.
    explicit solve_service(xpu::exec_policy policy,
                           service_config config = {});

    /// Stops the service (graceful drain) if still running.
    ~solve_service();

    solve_service(const solve_service&) = delete;
    solve_service& operator=(const solve_service&) = delete;

    /// Enqueues a request and returns the ticket its reply resolves
    /// through. Throws on malformed requests (dimension mismatches,
    /// record_history); admission-control refusals do NOT throw — they
    /// resolve the ticket with `request_status::rejected`.
    template <typename T>
    ticket<T> submit(solve_request<T> request)
    {
        BATCHLIN_ENSURE_MSG(!request.opts.record_history,
                            "serve:: does not scatter per-iteration "
                            "history; use a direct solve for that");
        request.opts.criterion.validate();
        const index_type items = std::visit(
            [](const auto& m) { return m.num_batch_items(); }, request.a);
        const index_type rows =
            std::visit([](const auto& m) { return m.rows(); }, request.a);
        BATCHLIN_ENSURE_MSG(items > 0, "empty solve request");
        BATCHLIN_ENSURE_DIMS(request.b.num_batch_items() == items &&
                                 request.x.num_batch_items() == items,
                             "batch sizes of A, b, x must match");
        BATCHLIN_ENSURE_DIMS(request.b.rows() == rows &&
                                 request.x.rows() == rows &&
                                 request.b.cols() == 1 &&
                                 request.x.cols() == 1,
                             "vector shapes must match the matrix order");

        const auto now = std::chrono::steady_clock::now();
        const auto deadline =
            request.deadline.count() > 0
                ? now + request.deadline
                : std::chrono::steady_clock::time_point::max();
        const std::uint64_t key =
            detail::coalesce_key<T>(request.a, request.opts);

        detail::typed_pending<T> typed{std::move(request), {}};
        ticket<T> fut = typed.promise.get_future();

        std::unique_lock<std::mutex> lk(mu_);
        ++submitted_requests_;
        submitted_systems_ += static_cast<std::uint64_t>(items);
        if (!accepting_) {
            ++rejected_requests_;
            lk.unlock();
            reply_without_solving(typed, request_status::rejected);
            return fut;
        }
        if (queued_systems_ + static_cast<size_type>(items) >
            config_.max_queue_systems) {
            if (config_.on_full == overflow_policy::reject) {
                ++rejected_requests_;
                lk.unlock();
                reply_without_solving(typed, request_status::rejected);
                return fut;
            }
            cv_space_.wait(lk, [&] {
                return !accepting_ ||
                       queued_systems_ + static_cast<size_type>(items) <=
                           config_.max_queue_systems;
            });
            if (!accepting_) {
                ++rejected_requests_;
                lk.unlock();
                reply_without_solving(typed, request_status::rejected);
                return fut;
            }
        }
        queue_.push_back(detail::pending_entry{key, now, deadline, items,
                                               std::move(typed)});
        queued_systems_ += static_cast<size_type>(items);
        // notify_all: idle workers must wake, and workers holding a
        // batching window open must re-scan for the new arrival.
        cv_work_.notify_all();
        return fut;
    }

    /// Blocks until the queue is empty and no batch is in flight. The
    /// service keeps accepting; with concurrent submitters this waits for
    /// a momentary quiescent point, not a permanent one.
    void drain();

    /// Stops accepting, solves everything already queued (windows are cut
    /// short), and joins the workers. Idempotent.
    void stop();

    bool accepting() const;

    /// Point-in-time statistics snapshot.
    service_stats stats() const;

    const service_config& config() const { return config_; }

private:
    /// Completes a request without solving it (rejected / expired).
    template <typename T>
    static void reply_without_solving(detail::typed_pending<T>& typed,
                                      request_status status)
    {
        solve_reply<T> reply;
        reply.status = status;
        reply.a = std::move(typed.request.a);
        reply.b = std::move(typed.request.b);
        reply.x = std::move(typed.request.x);
        typed.promise.set_value(std::move(reply));
    }

    static void reply_without_solving(detail::pending_entry& entry,
                                      request_status status)
    {
        std::visit([&](auto& typed) { reply_without_solving(typed, status); },
                   entry.body);
    }

    /// Resolves a promise exactly once: a second set (e.g. the failure
    /// sweep running after some replies already resolved) is a no-op
    /// instead of a `std::future_error` escaping the worker thread.
    /// Returns whether this call resolved the ticket.
    template <typename T>
    static bool try_reply(detail::typed_pending<T>& typed,
                          solve_reply<T> reply)
    {
        try {
            typed.promise.set_value(std::move(reply));
            return true;
        } catch (const std::future_error&) {
            return false;  // already satisfied
        }
    }

    void worker_loop(int worker_id);

    /// Removes queue_[index] under the caller's lock: books it as
    /// in-flight and frees its admission budget.
    detail::pending_entry pop_entry_locked(std::size_t index);

    void execute(xpu::queue& q,
                 std::vector<detail::pending_entry> batch);

    template <typename T>
    void execute_typed(xpu::queue& q,
                       std::vector<detail::pending_entry> batch);

    service_config config_;
    std::chrono::steady_clock::time_point start_;

    mutable std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_space_;
    std::condition_variable cv_idle_;
    std::deque<detail::pending_entry> queue_;
    size_type queued_systems_ = 0;
    std::size_t in_flight_entries_ = 0;
    bool accepting_ = true;
    bool stopping_ = false;

    std::uint64_t submitted_requests_ = 0;
    std::uint64_t submitted_systems_ = 0;
    std::uint64_t completed_requests_ = 0;
    std::uint64_t completed_systems_ = 0;
    std::uint64_t rejected_requests_ = 0;
    std::uint64_t expired_requests_ = 0;
    std::uint64_t failed_requests_ = 0;
    std::uint64_t batches_launched_ = 0;
    std::uint64_t batched_systems_sum_ = 0;
    std::vector<std::uint64_t> batch_histogram_;
    latency_window latency_;

    // Resilience counters and circuit-breaker state (guarded by mu_).
    std::uint64_t launch_faults_ = 0;
    std::uint64_t launch_retries_ = 0;
    std::uint64_t degraded_launches_ = 0;
    std::uint64_t recovered_requests_ = 0;
    std::uint64_t breaker_trips_ = 0;
    /// Launches observed / faulted within the current breaker window.
    std::uint32_t breaker_window_count_ = 0;
    std::uint32_t breaker_window_faulted_ = 0;
    /// Remaining launches of a tripped breaker's cooldown; > 0 suspends
    /// coalescing (workers launch solo).
    std::uint32_t breaker_remaining_ = 0;

    /// One queue per worker (deque: xpu::queue is not movable in debug
    /// builds). Constructed before, and outliving, the worker threads.
    std::deque<xpu::queue> worker_queues_;
    std::vector<std::thread> workers_;
};

}  // namespace batchlin::serve
