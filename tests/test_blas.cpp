// Unit tests for the device-side BLAS building blocks and the per-format
// SpMV kernels, including the traffic-attribution counters.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/device_blas.hpp"
#include "blas/matrix_view.hpp"
#include "blas/spmv.hpp"
#include "matrix/conversions.hpp"
#include "workload/stencil.hpp"
#include "xpu/arena.hpp"
#include "xpu/group.hpp"

namespace bl = batchlin;
using namespace batchlin::xpu;
using batchlin::index_type;
namespace blas = batchlin::blas;
namespace mat = batchlin::mat;

namespace {

struct group_fixture {
    counters stats;
    slm_arena arena{1 << 20};
    group g{0, 32, 16, arena, stats};

    template <typename T>
    dspan<T> global(std::vector<T>& v)
    {
        return {v.data(), static_cast<index_type>(v.size()),
                mem_space::global};
    }
    template <typename T>
    dspan<T> slm(std::vector<T>& v)
    {
        return {v.data(), static_cast<index_type>(v.size()),
                mem_space::slm};
    }
};

}  // namespace

TEST(Blas1, FillAndCopy)
{
    group_fixture f;
    std::vector<double> a(8, 0.0);
    std::vector<double> b(8, 0.0);
    blas::fill<double>(f.g, f.global(a), 3.0);
    blas::copy<double>(f.g, f.global(a), f.global(b));
    for (double v : b) {
        EXPECT_EQ(v, 3.0);
    }
}

TEST(Blas1, ScaleAxpyAxpby)
{
    group_fixture f;
    std::vector<double> x{1, 2, 3};
    std::vector<double> y{10, 20, 30};
    blas::scale<double>(f.g, 2.0, f.global(x));  // x = {2,4,6}
    blas::axpy<double>(f.g, 0.5, f.global(x), f.global(y));
    EXPECT_EQ(y[0], 11.0);
    EXPECT_EQ(y[2], 33.0);
    blas::axpby<double>(f.g, 1.0, f.global(x), -1.0, f.global(y));
    EXPECT_EQ(y[0], 2.0 - 11.0);
    EXPECT_EQ(y[1], 4.0 - 22.0);
}

TEST(Blas1, ElementwiseMult)
{
    group_fixture f;
    std::vector<double> a{1, 2, 3};
    std::vector<double> b{4, 5, 6};
    std::vector<double> out(3);
    blas::elementwise_mult<double, double>(f.g, f.global(a), f.global(b),
                                           f.global(out));
    EXPECT_EQ(out[0], 4.0);
    EXPECT_EQ(out[1], 10.0);
    EXPECT_EQ(out[2], 18.0);
}

TEST(Blas1, DotAndNorm)
{
    group_fixture f;
    std::vector<double> x{3, 4, 0, 0};
    std::vector<double> y{1, 1, 1, 1};
    EXPECT_DOUBLE_EQ(blas::dot<double>(f.g, f.global(x), f.global(y),
                                       reduce_path::group),
                     7.0);
    EXPECT_DOUBLE_EQ(
        blas::nrm2<double>(f.g, f.global(x), reduce_path::sub_group), 5.0);
}

TEST(Blas1, DotPathsAgree)
{
    group_fixture f;
    std::vector<double> x(97), y(97);
    for (index_type i = 0; i < 97; ++i) {
        x[i] = std::sin(0.1 * i);
        y[i] = std::cos(0.2 * i);
    }
    const double dg = blas::dot<double>(f.g, f.global(x), f.global(y),
                                        reduce_path::group);
    const double ds = blas::dot<double>(f.g, f.global(x), f.global(y),
                                        reduce_path::sub_group);
    EXPECT_NEAR(dg, ds, 1e-13);
}

TEST(Blas1, TrafficAttributedBySpace)
{
    group_fixture f;
    std::vector<double> src(16), dst(16);
    blas::copy<double>(f.g, f.slm(src), f.global(dst));
    EXPECT_DOUBLE_EQ(f.stats.slm_bytes, 16.0 * 8);
    EXPECT_DOUBLE_EQ(f.stats.global_write_bytes, 16.0 * 8);
    EXPECT_DOUBLE_EQ(f.stats.global_read_bytes, 0.0);
}

TEST(Blas1, ConstantReadsCountedSeparately)
{
    group_fixture f;
    std::vector<double> src(16), dst(16);
    dspan<const double> c{src.data(), 16, mem_space::constant};
    blas::copy<double>(f.g, c, f.slm(dst));
    EXPECT_DOUBLE_EQ(f.stats.constant_read_bytes, 16.0 * 8);
    EXPECT_DOUBLE_EQ(f.stats.slm_bytes, 16.0 * 8);
}

TEST(Blas1, FlopCounts)
{
    group_fixture f;
    std::vector<double> x(10, 1.0), y(10, 1.0);
    blas::axpy<double>(f.g, 2.0, f.global(x), f.global(y));
    EXPECT_DOUBLE_EQ(f.stats.flops, 20.0);
    f.stats.flops = 0;
    blas::dot<double>(f.g, f.global(x), f.global(y), reduce_path::group);
    // n multiplies + n reduction adds.
    EXPECT_DOUBLE_EQ(f.stats.flops, 20.0);
}

namespace {

/// Dense reference y = A x for one CSR item.
std::vector<double> reference_spmv(const mat::batch_csr<double>& a,
                                   index_type item,
                                   const std::vector<double>& x)
{
    std::vector<double> y(a.rows(), 0.0);
    for (index_type i = 0; i < a.rows(); ++i) {
        for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1]; ++k) {
            y[i] += a.item_values(item)[k] * x[a.col_idxs()[k]];
        }
    }
    return y;
}

}  // namespace

TEST(Spmv, CsrMatchesReference)
{
    const auto a = batchlin::work::stencil_3pt<double>(3, 40);
    group_fixture f;
    std::vector<double> x(40), y(40);
    for (index_type i = 0; i < 40; ++i) {
        x[i] = 0.3 * i - 2.0;
    }
    for (index_type item = 0; item < 3; ++item) {
        blas::spmv<double>(f.g, blas::item_view(a, item), f.global(x),
                           f.global(y));
        const auto ref = reference_spmv(a, item, x);
        for (index_type i = 0; i < 40; ++i) {
            EXPECT_NEAR(y[i], ref[i], 1e-13) << "row " << i;
        }
    }
}

TEST(Spmv, EllMatchesCsr)
{
    const auto a = batchlin::work::stencil_3pt<double>(2, 33);
    const auto e = mat::to_ell(a);
    group_fixture f;
    std::vector<double> x(33), y_csr(33), y_ell(33);
    for (index_type i = 0; i < 33; ++i) {
        x[i] = std::sin(0.7 * i);
    }
    blas::spmv<double>(f.g, blas::item_view(a, 1), f.global(x),
                       f.global(y_csr));
    blas::spmv<double>(f.g, blas::item_view(e, 1), f.global(x),
                       f.global(y_ell));
    for (index_type i = 0; i < 33; ++i) {
        EXPECT_NEAR(y_csr[i], y_ell[i], 1e-13);
    }
}

TEST(Spmv, DenseMatchesCsr)
{
    const auto a = batchlin::work::stencil_3pt<double>(2, 17);
    const auto d = mat::to_dense(a);
    group_fixture f;
    std::vector<double> x(17), y_csr(17), y_dense(17);
    for (index_type i = 0; i < 17; ++i) {
        x[i] = 1.0 / (i + 1);
    }
    blas::spmv<double>(f.g, blas::item_view(a, 0), f.global(x),
                       f.global(y_csr));
    blas::spmv<double>(f.g, blas::item_view(d, 0), f.global(x),
                       f.global(y_dense));
    for (index_type i = 0; i < 17; ++i) {
        EXPECT_NEAR(y_csr[i], y_dense[i], 1e-13);
    }
}

TEST(Spmv, CsrChargesPatternAsConstant)
{
    const auto a = batchlin::work::stencil_3pt<double>(1, 16);
    group_fixture f;
    std::vector<double> x(16, 1.0), y(16);
    blas::spmv<double>(f.g, blas::item_view(a, 0), f.global(x),
                       f.global(y));
    const double nnz = 3.0 * 16 - 2;
    // Pattern (row_ptrs + col_idxs) + matrix values as constant reads.
    EXPECT_DOUBLE_EQ(f.stats.constant_read_bytes,
                     (16 + 1 + nnz) * 4 + nnz * 8);
    // x gathers are charged at transaction granularity (see spmv.hpp).
    EXPECT_DOUBLE_EQ(f.stats.global_read_bytes,
                     nnz * blas::gather_transaction_bytes);
    EXPECT_DOUBLE_EQ(f.stats.global_write_bytes, 16.0 * 8);  // y
    // Flop slots: every row occupies a full 16-lane sub-group (rows have
    // 2-3 nnz), plus one combine per row.
    EXPECT_DOUBLE_EQ(f.stats.flops, 2.0 * 16 * 16 + 16.0);
}

TEST(Spmv, EllPaddingStillComputes)
{
    // A pattern with one long row: ELL pads the rest; results must agree
    // and the padded lanes count as flops (they execute on hardware).
    std::vector<index_type> rp{0, 1, 5, 6};
    std::vector<index_type> ci{0, 0, 1, 2, 3, 2, 3};
    // row lengths 1, 4, 1, 1 -> width 4
    std::vector<index_type> rp4{0, 1, 5, 6, 7};
    mat::batch_csr<double> a(1, 4, 4, rp4, ci);
    for (index_type k = 0; k < a.nnz(); ++k) {
        a.item_values(0)[k] = k + 1.0;
    }
    const auto e = mat::to_ell(a);
    EXPECT_EQ(e.ell_width(), 4);
    group_fixture f;
    std::vector<double> x{1, 2, 3, 4};
    std::vector<double> y_csr(4), y_ell(4);
    blas::spmv<double>(f.g, blas::item_view(a, 0), f.global(x),
                       f.global(y_csr));
    blas::spmv<double>(f.g, blas::item_view(e, 0), f.global(x),
                       f.global(y_ell));
    for (index_type i = 0; i < 4; ++i) {
        EXPECT_NEAR(y_csr[i], y_ell[i], 1e-14);
    }
}

TEST(Spmv, AdvancedSpmvFusesUpdate)
{
    const auto a = batchlin::work::stencil_3pt<double>(1, 8);
    group_fixture f;
    std::vector<double> x(8, 1.0), y(8, 10.0), scratch(8);
    // y = 2*A*x - 1*y
    blas::advanced_spmv(f.g, 2.0, blas::item_view(a, 0),
                        dspan<const double>{x.data(), 8, mem_space::global},
                        -1.0, f.global(y), f.global(scratch));
    const auto ax = reference_spmv(a, 0, x);
    for (index_type i = 0; i < 8; ++i) {
        EXPECT_NEAR(y[i], 2.0 * ax[i] - 10.0, 1e-13);
    }
}

TEST(Spmv, FloatInstantiation)
{
    const auto a = batchlin::work::stencil_3pt<float>(1, 12);
    group_fixture f;
    std::vector<float> x(12, 1.0f), y(12);
    blas::spmv<float>(f.g, blas::item_view(a, 0),
                      dspan<const float>{x.data(), 12, mem_space::global},
                      dspan<float>{y.data(), 12, mem_space::global});
    // Row 0 of the stencil: diag + (-1) = shift + 1 > 0.
    EXPECT_GT(y[0], 0.0f);
}
