// Wall-clock timing helper for benchmarks and examples.
#pragma once

#include <chrono>

namespace batchlin {

/// Monotonic wall-clock timer; `seconds()` reports time since construction
/// or the last `reset()`.
class wall_timer {
public:
    wall_timer() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    double seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    double milliseconds() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace batchlin
