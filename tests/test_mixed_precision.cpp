// Tests of the mixed-precision storage path and the iterative-refinement
// driver built on it: fp32 storage halves the streamed matrix bytes but
// floors the attainable true residual, solve_refined recovers full FP64
// accuracy on the Table 4 chemistry matrices, serve replies stay
// bit-identical to solo solves under fp32 storage, the dynamic batcher
// never coalesces across storage policies, and a stalled refinement
// demotes to the native-storage fallback chain (which also absorbs
// injected device faults).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "batchlin/batchlin.hpp"

namespace bl = batchlin;
using bl::index_type;
using bl::size_type;
namespace mat = batchlin::mat;
namespace precond = batchlin::precond;
namespace serve = batchlin::serve;
namespace solver = batchlin::solver;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;
using std::chrono::microseconds;
using std::chrono::milliseconds;

namespace {

solver::solve_options chem_opts(double tol = 1e-9)
{
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(tol, 300);
    return opts;
}

double worst_true_residual(const solver::batch_matrix<double>& a,
                           const mat::batch_dense<double>& b,
                           const mat::batch_dense<double>& x)
{
    double worst = 0.0;
    for (const double r : solver::relative_residual_norms(a, b, x)) {
        worst = std::max(worst, r);
    }
    return worst;
}

xpu::exec_policy faulted_policy(
    const std::vector<std::uint64_t>& faulted_launches)
{
    xpu::exec_policy policy = xpu::make_sycl_policy();
    for (const std::uint64_t launch : faulted_launches) {
        policy.faults.events.push_back(
            {xpu::fault_kind::launch_fail, launch, 0, 1,
             xpu::fault_target::slm, xpu::poison_mode::nan});
    }
    return policy;
}

template <typename T>
serve::solve_request<T> make_request(mat::batch_csr<T> a,
                                     const solver::solve_options& opts,
                                     std::uint64_t rhs_seed)
{
    serve::solve_request<T> req;
    const index_type items = a.num_batch_items();
    const index_type rows = a.rows();
    req.b = work::random_rhs<T>(items, rows, rhs_seed);
    req.x = mat::batch_dense<T>(items, rows, 1);
    req.a = std::move(a);
    req.opts = opts;
    return req;
}

}  // namespace

// ---------------------------------------------------------------------
// Storage-precision policy basics.
// ---------------------------------------------------------------------

TEST(MixedPrecision, EffectiveStorageCollapsesForNarrowComputeTypes)
{
    // fp32 storage under float compute stores nothing smaller — the
    // policy collapses to native so no conversion machinery engages.
    EXPECT_EQ(mat::effective_storage<float>(mat::storage_precision::fp32),
              mat::storage_precision::native);
    EXPECT_EQ(mat::effective_storage<double>(mat::storage_precision::fp32),
              mat::storage_precision::fp32);
    EXPECT_EQ(
        mat::effective_storage<double>(mat::storage_precision::native),
        mat::storage_precision::native);
}

TEST(MixedPrecision, Fp32StorageHalvesValueBytesInEveryFormat)
{
    const mat::batch_csr<double> csr = work::stencil_3pt<double>(2, 32, 5);
    mat::batch_csr<double> csr32 = csr;
    csr32.set_storage_precision(mat::storage_precision::fp32);
    EXPECT_EQ(csr32.value_bytes_per_item() * 2, csr.value_bytes_per_item());

    const mat::batch_ell<double> ell = mat::to_ell(csr);
    mat::batch_ell<double> ell32 = ell;
    ell32.set_storage_precision(mat::storage_precision::fp32);
    EXPECT_EQ(ell32.value_bytes_per_item() * 2, ell.value_bytes_per_item());

    const mat::batch_dense<double> dn = mat::to_dense(csr);
    mat::batch_dense<double> dn32 = dn;
    dn32.set_storage_precision(mat::storage_precision::fp32);
    EXPECT_EQ(dn32.value_bytes_per_item() * 2, dn.value_bytes_per_item());

    // Compression is an exact narrow of every stored value.
    for (index_type i = 0; i < csr.num_batch_items(); ++i) {
        const float* v32 = csr32.item_values_fp32(i);
        const double* v = csr.item_values(i);
        for (index_type k = 0; k < csr.nnz(); ++k) {
            EXPECT_EQ(v32[k], static_cast<float>(v[k]));
        }
    }
}

TEST(MixedPrecision, Fp32StorageReducesStreamedMatrixBytes)
{
    // The same solve, forced to the same iteration count, streams fewer
    // constant (matrix/precond payload) bytes under fp32 storage — the
    // counter reduction the perfmodel roofline consumes.
    const mat::batch_csr<double> csr =
        work::generate_mechanism_batch<double>(
            work::pele_mechanisms().front(), 8, 11);
    const solver::batch_matrix<double> a = csr;
    const auto b = work::random_rhs<double>(8, csr.rows(), 12);

    solver::solve_options opts = chem_opts();
    // Fixed budget, unreachable absolute tolerance: both runs execute
    // exactly max_iterations, so the byte counters compare like for like.
    opts.criterion = stop::absolute(1e-300, 20);

    xpu::queue qn(xpu::make_sycl_policy());
    mat::batch_dense<double> xn(8, csr.rows(), 1);
    opts.storage = mat::storage_precision::native;
    const auto native = solver::solve(qn, a, b, xn, opts);

    xpu::queue qc(xpu::make_sycl_policy());
    mat::batch_dense<double> xc(8, csr.rows(), 1);
    opts.storage = mat::storage_precision::fp32;
    const auto compressed = solver::solve(qc, a, b, xc, opts);

    EXPECT_LT(compressed.stats.constant_read_bytes,
              native.stats.constant_read_bytes);
    // Arithmetic stays FP64: flops are unchanged by the storage policy.
    EXPECT_EQ(compressed.stats.flops, native.stats.flops);
}

TEST(MixedPrecision, Fp32StorageFloorsTrueResidualBelowFp64Target)
{
    // The motivation for refinement: the compressed solve satisfies its
    // own (recursive) criterion, but the TRUE residual floors near fp32
    // epsilon — well short of what native storage delivers.
    const mat::batch_csr<double> csr =
        work::generate_mechanism_batch<double>(
            work::pele_mechanisms().back(), 16, 21);
    const solver::batch_matrix<double> a = csr;
    const auto b = work::random_rhs<double>(16, csr.rows(), 22);

    solver::solve_options opts = chem_opts(1e-9);

    xpu::queue qn(xpu::make_sycl_policy());
    mat::batch_dense<double> xn(16, csr.rows(), 1);
    opts.storage = mat::storage_precision::native;
    ASSERT_EQ(solver::solve(qn, a, b, xn, opts).log.num_converged(), 16);
    const double native_worst = worst_true_residual(a, b, xn);

    xpu::queue qc(xpu::make_sycl_policy());
    mat::batch_dense<double> xc(16, csr.rows(), 1);
    opts.storage = mat::storage_precision::fp32;
    ASSERT_EQ(solver::solve(qc, a, b, xc, opts).log.num_converged(), 16);
    const double compressed_worst = worst_true_residual(a, b, xc);

    EXPECT_LE(native_worst, 1e-8);
    EXPECT_GT(compressed_worst, 1e-8);  // floored near fp32 epsilon
}

// ---------------------------------------------------------------------
// Iterative refinement.
// ---------------------------------------------------------------------

TEST(Refine, RestoresFp64AccuracyOnChemistryMatrices)
{
    // The acceptance criterion of the mixed-precision path: on every
    // Table 4 mechanism, fp32 storage plus refinement meets the same
    // FP64 tolerance a native solve does.
    for (const work::mechanism& mech : work::pele_mechanisms()) {
        const mat::batch_csr<double> csr =
            work::generate_mechanism_batch<double>(mech, 8, 31);
        const solver::batch_matrix<double> a = csr;
        const auto b = work::random_rhs<double>(8, csr.rows(), 32);
        mat::batch_dense<double> x(8, csr.rows(), 1);

        solver::solve_options opts = chem_opts(1e-9);
        opts.storage = mat::storage_precision::fp32;

        xpu::queue q(xpu::make_sycl_policy());
        const solver::refined_result rr =
            solver::solve_refined(q, a, b, x, opts);

        EXPECT_EQ(rr.log.num_converged(), 8) << mech.name;
        EXPECT_FALSE(rr.fell_back) << mech.name;
        EXPECT_GE(rr.sweeps, 1) << mech.name;
        EXPECT_LE(worst_true_residual(a, b, x), 1e-9) << mech.name;
        ASSERT_EQ(rr.true_residuals.size(), 8u);
        for (const double r : rr.true_residuals) {
            EXPECT_LE(r, 1e-9) << mech.name;
        }
    }
}

TEST(Refine, NativeEffectiveStorageIsAPlainSolveWithReport)
{
    const mat::batch_csr<double> csr = work::stencil_3pt<double>(4, 48, 41);
    const solver::batch_matrix<double> a = csr;
    const auto b = work::random_rhs<double>(4, 48, 42);
    mat::batch_dense<double> x(4, 48, 1);

    solver::solve_options opts = chem_opts(1e-10);
    opts.storage = mat::storage_precision::native;

    xpu::queue q(xpu::make_sycl_policy());
    const solver::refined_result rr =
        solver::solve_refined(q, a, b, x, opts);
    EXPECT_EQ(rr.sweeps, 0);
    EXPECT_FALSE(rr.fell_back);
    EXPECT_EQ(rr.log.num_converged(), 4);
    EXPECT_LE(worst_true_residual(a, b, x), 1e-10);
}

TEST(Refine, StallDemotesToNativeStorageFallback)
{
    // Zero correction sweeps allowed: the compressed inner solve cannot
    // reach the FP64 target on its own, so refinement must demote to the
    // native-storage resilience chain — and still deliver full accuracy.
    const mat::batch_csr<double> csr =
        work::generate_mechanism_batch<double>(
            work::pele_mechanisms().front(), 6, 51);
    const solver::batch_matrix<double> a = csr;
    const auto b = work::random_rhs<double>(6, csr.rows(), 52);
    mat::batch_dense<double> x(6, csr.rows(), 1);

    solver::solve_options opts = chem_opts(1e-9);
    opts.storage = mat::storage_precision::fp32;
    solver::refine_options ropts;
    ropts.max_sweeps = 0;

    xpu::queue q(xpu::make_sycl_policy());
    const solver::refined_result rr =
        solver::solve_refined(q, a, b, x, opts, ropts);
    EXPECT_TRUE(rr.fell_back);
    EXPECT_EQ(rr.log.num_converged(), 6);
    EXPECT_LE(worst_true_residual(a, b, x), 1e-9);
}

TEST(Refine, DisabledFallbackReportsHonestNonConvergence)
{
    const mat::batch_csr<double> csr =
        work::generate_mechanism_batch<double>(
            work::pele_mechanisms().front(), 4, 61);
    const solver::batch_matrix<double> a = csr;
    const auto b = work::random_rhs<double>(4, csr.rows(), 62);
    mat::batch_dense<double> x(4, csr.rows(), 1);

    solver::solve_options opts = chem_opts(1e-12);
    opts.storage = mat::storage_precision::fp32;
    solver::refine_options ropts;
    ropts.max_sweeps = 0;  // target unreachable without sweeps
    ropts.fallback_to_native = false;

    xpu::queue q(xpu::make_sycl_policy());
    const solver::refined_result rr =
        solver::solve_refined(q, a, b, x, opts, ropts);
    EXPECT_FALSE(rr.fell_back);
    // Statuses are judged on the TRUE residual, so the fp32 floor shows
    // up as honest non-convergence rather than a false "converged".
    EXPECT_LT(rr.log.num_converged(), 4);
}

// ---------------------------------------------------------------------
// Serve integration.
// ---------------------------------------------------------------------

TEST(MixedPrecision, ServeRepliesBitIdenticalToSoloUnderFp32Storage)
{
    solver::solve_options opts = chem_opts(1e-8);
    opts.storage = mat::storage_precision::fp32;

    struct spec {
        index_type items;
        std::uint64_t seed;
    };
    const std::vector<spec> specs = {{3, 71}, {1, 72}, {2, 73}};

    // Reference: solo compressed solves, one fresh queue each.
    std::vector<mat::batch_dense<double>> want_x;
    for (const spec& s : specs) {
        const solver::batch_matrix<double> a =
            work::stencil_3pt<double>(s.items, 24, s.seed);
        const auto b = work::random_rhs<double>(s.items, 24, s.seed + 100);
        mat::batch_dense<double> x(s.items, 24, 1);
        xpu::queue q(xpu::make_sycl_policy());
        ASSERT_EQ(solver::solve(q, a, b, x, opts).log.num_converged(),
                  s.items);
        want_x.push_back(std::move(x));
    }

    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = milliseconds(20);
    serve::solve_service service(xpu::make_sycl_policy(), cfg);
    std::vector<serve::solve_service::ticket<double>> tickets;
    for (const spec& s : specs) {
        tickets.push_back(service.submit(make_request(
            work::stencil_3pt<double>(s.items, 24, s.seed), opts,
            s.seed + 100)));
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
        serve::solve_reply<double> reply = tickets[i].get();
        ASSERT_EQ(reply.status, serve::request_status::ok) << reply.error;
        // submit() compressed the request's matrix in place; the reply
        // hands it back in that (recyclable) compressed form.
        std::visit(
            [](const auto& m) {
                EXPECT_EQ(m.storage_mode(), mat::storage_precision::fp32);
            },
            reply.a);
        EXPECT_EQ(reply.x.values(), want_x[i].values()) << "req=" << i;
    }
}

TEST(MixedPrecision, CoalescingNeverMixesStoragePolicies)
{
    // Unit level: the pattern matches but the storage modes differ, so
    // the batcher must refuse to fuse.
    const mat::batch_csr<double> csr = work::stencil_3pt<double>(2, 20, 81);
    solver::batch_matrix<double> native = csr;
    mat::batch_csr<double> c32 = csr;
    c32.set_storage_precision(mat::storage_precision::fp32);
    solver::batch_matrix<double> compressed = c32;
    EXPECT_TRUE(solver::same_shape(native, compressed));
    EXPECT_FALSE(solver::can_coalesce(native, compressed));
    EXPECT_TRUE(solver::can_coalesce(native, native));
    EXPECT_TRUE(solver::can_coalesce(compressed, compressed));

    // The grouping hash separates the policies (and refined traffic)
    // before the exact check even runs.
    solver::solve_options n_opts = chem_opts();
    n_opts.storage = mat::storage_precision::native;
    solver::solve_options f_opts = chem_opts();
    f_opts.storage = mat::storage_precision::fp32;
    solver::solve_options r_opts = f_opts;
    r_opts.refine_sweeps = 2;
    EXPECT_NE(serve::detail::coalesce_key<double>(native, n_opts),
              serve::detail::coalesce_key<double>(compressed, f_opts));
    EXPECT_NE(serve::detail::coalesce_key<double>(native, f_opts),
              serve::detail::coalesce_key<double>(native, r_opts));

    // Service level: same pattern, mixed policies, one worker holding a
    // generous window — the fused launches stay homogeneous.
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = milliseconds(20);
    serve::solve_service service(xpu::make_sycl_policy(), cfg);
    std::vector<serve::solve_service::ticket<double>> tickets;
    for (int i = 0; i < 2; ++i) {
        tickets.push_back(service.submit(make_request(
            work::stencil_3pt<double>(2, 20, 81), n_opts, 90 + i)));
        tickets.push_back(service.submit(make_request(
            work::stencil_3pt<double>(2, 20, 81), f_opts, 90 + i)));
    }
    for (auto& t : tickets) {
        const auto reply = t.get();
        ASSERT_EQ(reply.status, serve::request_status::ok) << reply.error;
        // A fused launch of both policies would carry all 8 systems.
        EXPECT_LE(reply.fused_systems, 4);
    }
    service.drain();
    EXPECT_GE(service.stats().batches_launched, 2u);
}

TEST(Refine, ServeRoutesRefinedRequestsAndCountsSweeps)
{
    solver::solve_options opts = chem_opts(1e-9);
    opts.storage = mat::storage_precision::fp32;
    opts.refine_sweeps = 3;

    const mat::batch_csr<double> csr =
        work::generate_mechanism_batch<double>(
            work::pele_mechanisms().front(), 4, 91);
    const solver::batch_matrix<double> a = csr;

    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = milliseconds(10);
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    auto ticket =
        service.submit(make_request(mat::batch_csr<double>(csr), opts, 92));
    const auto reply = ticket.get();
    ASSERT_EQ(reply.status, serve::request_status::ok) << reply.error;
    EXPECT_EQ(reply.log.num_converged(), 4);
    // Refined requests keep their native matrix (the FP64 residuals need
    // the native bits); only unrefined fp32 traffic is compressed.
    std::visit(
        [](const auto& m) {
            EXPECT_EQ(m.storage_mode(), mat::storage_precision::native);
        },
        reply.a);

    // The refined request really met the FP64 target.
    mat::batch_dense<double> x(4, csr.rows(), 1);
    std::copy(reply.x.values().begin(), reply.x.values().end(),
              x.values().begin());
    const auto b = work::random_rhs<double>(4, csr.rows(), 92);
    EXPECT_LE(worst_true_residual(a, b, x), 1e-9);

    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_EQ(s.refined_batches, 1u);
    EXPECT_GE(s.refine_sweeps, 1u);
    EXPECT_EQ(s.refine_fallbacks, 0u);
}

TEST(Refine, InjectedLaunchFaultOnRefinedBatchIsRetried)
{
    // A device fault during the refined batch's inner solve surfaces as
    // xpu::device_error; the serve retry ladder re-runs the whole
    // refinement and the request still resolves ok with FP64 accuracy.
    solver::solve_options opts = chem_opts(1e-9);
    opts.storage = mat::storage_precision::fp32;
    opts.refine_sweeps = 3;

    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = milliseconds(0);
    cfg.launch_retries = 2;
    cfg.retry_backoff = microseconds(1);
    serve::solve_service service(faulted_policy({0}), cfg);

    const mat::batch_csr<double> csr =
        work::generate_mechanism_batch<double>(
            work::pele_mechanisms().front(), 3, 95);
    auto ticket =
        service.submit(make_request(mat::batch_csr<double>(csr), opts, 96));
    const auto reply = ticket.get();
    ASSERT_EQ(reply.status, serve::request_status::ok) << reply.error;
    EXPECT_GE(reply.attempts, 2);
    EXPECT_EQ(reply.log.num_converged(), 3);

    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_GE(s.launch_faults, 1u);
    EXPECT_GE(s.refined_batches, 1u);
    EXPECT_EQ(s.failed_requests, 0u);
}
