file(REMOVE_RECURSE
  "CMakeFiles/explicit_scaling.dir/explicit_scaling.cpp.o"
  "CMakeFiles/explicit_scaling.dir/explicit_scaling.cpp.o.d"
  "explicit_scaling"
  "explicit_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explicit_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
