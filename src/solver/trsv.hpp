// BatchTrsv: batched direct triangular solve (paper Table 3).
//
// For batches whose shared pattern is (upper or lower) triangular with a
// full diagonal, the solve is a single exact substitution sweep — the one
// batched "direct" building block the solver stack offers (it also backs
// the ILU application). Requires BatchCsr.
#pragma once

#include "log/logger.hpp"
#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "solver/launch.hpp"
#include "solver/workspace.hpp"
#include "xpu/queue.hpp"

namespace batchlin::solver {

enum class triangle {
    /// Detect from the shared pattern; throws for non-triangular patterns.
    automatic,
    lower,
    upper,
};

/// Inspects the shared pattern: returns lower/upper, throws when the
/// pattern is neither triangular nor has a full diagonal.
template <typename T>
triangle detect_triangle(const mat::batch_csr<T>& a);

/// Solves every system of `range` by exact substitution (one "iteration").
template <typename T>
void run_trsv(xpu::queue& q, const mat::batch_csr<T>& a,
              const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
              triangle mode, const slm_plan& plan,
              const kernel_config& config, log::batch_log& logger,
              xpu::batch_range range);

}  // namespace batchlin::solver
