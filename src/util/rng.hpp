// Deterministic random number generation.
//
// All workload generators draw from this wrapper so that every test,
// benchmark, and example is bit-reproducible run-to-run; seeds are always
// explicit at the call site.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/math.hpp"

namespace batchlin {

/// Deterministic RNG used by the workload generators and tests.
class rng {
public:
    explicit rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform real in [lo, hi).
    double uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Uniform integer in [lo, hi] (inclusive).
    index_type uniform_int(index_type lo, index_type hi)
    {
        return std::uniform_int_distribution<index_type>(lo, hi)(engine_);
    }

    /// Standard normal draw.
    double normal(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Draws `count` distinct integers from [lo, hi], sorted ascending.
    std::vector<index_type> distinct_sorted(index_type lo, index_type hi,
                                            index_type count);

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace batchlin
