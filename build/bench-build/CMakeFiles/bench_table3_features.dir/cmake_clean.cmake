file(REMOVE_RECURSE
  "../bench/bench_table3_features"
  "../bench/bench_table3_features.pdb"
  "CMakeFiles/bench_table3_features.dir/bench_table3_features.cpp.o"
  "CMakeFiles/bench_table3_features.dir/bench_table3_features.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
