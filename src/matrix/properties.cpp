#include "matrix/properties.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace batchlin::mat {

template <typename T>
pattern_stats analyze_pattern(const batch_csr<T>& matrix)
{
    pattern_stats stats;
    stats.rows = matrix.rows();
    stats.cols = matrix.cols();
    stats.nnz = matrix.nnz();
    stats.min_row_nnz = std::numeric_limits<index_type>::max();
    const auto& row_ptrs = matrix.row_ptrs();
    const auto& col_idxs = matrix.col_idxs();
    bool full_diag = true;
    for (index_type i = 0; i < matrix.rows(); ++i) {
        const index_type len = row_ptrs[i + 1] - row_ptrs[i];
        stats.min_row_nnz = std::min(stats.min_row_nnz, len);
        stats.max_row_nnz = std::max(stats.max_row_nnz, len);
        bool has_diag = false;
        for (index_type k = row_ptrs[i]; k < row_ptrs[i + 1]; ++k) {
            stats.bandwidth =
                std::max(stats.bandwidth, std::abs(col_idxs[k] - i));
            has_diag = has_diag || col_idxs[k] == i;
        }
        full_diag = full_diag && has_diag;
    }
    if (matrix.rows() == 0) {
        stats.min_row_nnz = 0;
    }
    stats.avg_row_nnz = matrix.rows() > 0 ? static_cast<double>(stats.nnz) /
                                                matrix.rows()
                                          : 0.0;
    stats.full_diagonal = full_diag && matrix.rows() > 0;

    // Pattern symmetry: check that the transpose position exists for every
    // entry (binary search within the target row).
    stats.symmetric_pattern = true;
    for (index_type i = 0; i < matrix.rows() && stats.symmetric_pattern;
         ++i) {
        for (index_type k = row_ptrs[i]; k < row_ptrs[i + 1]; ++k) {
            const index_type j = col_idxs[k];
            if (j >= matrix.rows()) {
                stats.symmetric_pattern = false;
                break;
            }
            const auto begin = col_idxs.begin() + row_ptrs[j];
            const auto end = col_idxs.begin() + row_ptrs[j + 1];
            if (!std::binary_search(begin, end, i)) {
                stats.symmetric_pattern = false;
                break;
            }
        }
    }
    return stats;
}

template <typename T>
bool is_symmetric(const batch_csr<T>& matrix, index_type batch, T tol)
{
    for (index_type i = 0; i < matrix.rows(); ++i) {
        for (index_type k = matrix.row_ptrs()[i];
             k < matrix.row_ptrs()[i + 1]; ++k) {
            const index_type j = matrix.col_idxs()[k];
            const T a_ij = matrix.item_values(batch)[k];
            const T a_ji = matrix.at(batch, j, i);
            if (std::abs(a_ij - a_ji) > tol) {
                return false;
            }
        }
    }
    return true;
}

template <typename T>
bool is_diagonally_dominant(const batch_csr<T>& matrix, index_type batch)
{
    const T* vals = matrix.item_values(batch);
    for (index_type i = 0; i < matrix.rows(); ++i) {
        T diag{};
        T off_sum{};
        bool has_diag = false;
        for (index_type k = matrix.row_ptrs()[i];
             k < matrix.row_ptrs()[i + 1]; ++k) {
            if (matrix.col_idxs()[k] == i) {
                diag = std::abs(vals[k]);
                has_diag = true;
            } else {
                off_sum += std::abs(vals[k]);
            }
        }
        if (!has_diag || diag == T{0} || diag < off_sum) {
            return false;
        }
    }
    return true;
}

template <typename T>
double row_imbalance(const batch_csr<T>& matrix)
{
    const pattern_stats stats = analyze_pattern(matrix);
    return stats.avg_row_nnz > 0.0
               ? static_cast<double>(stats.max_row_nnz) / stats.avg_row_nnz
               : 1.0;
}

#define BATCHLIN_INSTANTIATE_PROPERTIES(T)                                 \
    template pattern_stats analyze_pattern(const batch_csr<T>&);           \
    template bool is_symmetric(const batch_csr<T>&, index_type, T);        \
    template bool is_diagonally_dominant(const batch_csr<T>&, index_type); \
    template double row_imbalance(const batch_csr<T>&)

BATCHLIN_INSTANTIATE_PROPERTIES(float);
BATCHLIN_INSTANTIATE_PROPERTIES(double);

}  // namespace batchlin::mat
