// Ablation: preconditioner choice — iteration reduction vs per-iteration
// cost (the flexibility axis the paper's design §3 provides: "the
// flexibility of using different preconditioners").
//
// Sweeps all five preconditioners over the PeleLM inputs and reports
// iterations, SLM workspace, and the modeled time at 2^17 systems. The
// classic trade: stronger preconditioners (block-Jacobi, ILU, ISAI) cut
// iterations but pay generation cost, extra per-iteration work, and SLM
// footprint; scalar Jacobi is the sweet spot for these mildly conditioned
// BDF systems — which is exactly what the paper uses (§4.1).
#include <cstdio>

#include "common.hpp"

using namespace bench;

namespace {

struct row {
    const char* label;
    precond::type type;
    index_type block_size;
};

}  // namespace

int main()
{
    const index_type target = 1 << 17;
    const perf::device_spec device = perf::pvc_1s();
    const row rows[] = {
        {"none", precond::type::none, 0},
        {"jacobi", precond::type::jacobi, 0},
        {"block-jacobi(8)", precond::type::block_jacobi, 8},
        {"ilu0", precond::type::ilu, 0},
        {"isai", precond::type::isai, 0},
    };

    std::printf("Ablation: preconditioner trade-off "
                "(BatchBicgstab, 2^17 matrices, %s)\n\n",
                device.name.c_str());
    for (const work::mechanism& mech : work::pele_mechanisms()) {
        const index_type items = measurement_batch(mech.num_unique);
        const solver::batch_matrix<double> a =
            work::generate_mechanism_batch<double>(mech, items);
        const auto b = work::mechanism_rhs<double>(items, mech.rows, 77);

        std::printf("(%s, %dx%d, nnz %d)\n", mech.name.c_str(), mech.rows,
                    mech.rows, mech.nnz);
        std::printf("%-18s | %10s | %14s | %12s | %10s\n", "precond",
                    "mean iters", "slm B/group", "time [ms]", "converged");
        rule(76);
        for (const row& r : rows) {
            solver::solve_options opts = pele_options();
            opts.preconditioner = r.type;
            opts.block_jacobi_size = r.block_size;
            const measured_solve m = measure(device, a, b, opts);
            std::printf("%-18s | %10.1f | %14lld | %12.3f | %6d/%d\n",
                        r.label, m.mean_iterations,
                        static_cast<long long>(
                            m.result.stats.slm_footprint_bytes),
                        projected_ms(device, m, target),
                        m.result.log.num_converged(), items);
        }
        std::printf("\n");
    }
    std::printf("(the paper runs scalar Jacobi on all PeleLM inputs; the "
                "sweep shows why — the stronger options trade too much "
                "per-iteration cost for the iteration savings on these "
                "mildly conditioned systems)\n");
    return 0;
}
