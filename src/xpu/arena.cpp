#include "xpu/arena.hpp"

namespace batchlin::xpu {

slm_arena::slm_arena(size_type capacity_bytes)
    : buffer_(static_cast<std::size_t>(capacity_bytes)),
      capacity_(capacity_bytes)
{
    BATCHLIN_ENSURE_MSG(capacity_bytes >= 0, "negative SLM capacity");
}

}  // namespace batchlin::xpu
