// Tests of the resilience layer: deterministic fault injection in xpu::,
// the per-system solve_status taxonomy (breakdown regressions on exact
// dyadic-rational matrices), the zero-rhs short circuit, the
// solve_resilient fallback chain, and the randomized fault soak the
// acceptance criteria pin down (>= 1000 solves, every system terminal,
// recovered systems re-verified against explicit residuals, and identical
// schedules for identical seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "batchlin/batchlin.hpp"

namespace bl = batchlin;
using bl::index_type;
using bl::size_type;
namespace mat = batchlin::mat;
namespace precond = batchlin::precond;
namespace solver = batchlin::solver;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;
using batchlin::log::solve_status;

namespace {

/// One batch item per row-major n x n value array, all sharing the full
/// dense sparsity pattern (explicit zeros included) so breakdown fixtures
/// can coexist with healthy systems in one batch_csr.
mat::batch_csr<double> dense_pattern_csr(
    index_type n, const std::vector<std::vector<double>>& items)
{
    std::vector<index_type> row_ptrs(static_cast<std::size_t>(n) + 1);
    std::vector<index_type> col_idxs(static_cast<std::size_t>(n * n));
    for (index_type r = 0; r <= n; ++r) {
        row_ptrs[static_cast<std::size_t>(r)] = r * n;
    }
    for (index_type r = 0; r < n; ++r) {
        for (index_type c = 0; c < n; ++c) {
            col_idxs[static_cast<std::size_t>(r * n + c)] = c;
        }
    }
    mat::batch_csr<double> a(static_cast<index_type>(items.size()), n, n,
                             row_ptrs, col_idxs);
    for (index_type i = 0; i < a.num_batch_items(); ++i) {
        const auto& vals = items[static_cast<std::size_t>(i)];
        std::copy(vals.begin(), vals.end(), a.item_values(i));
    }
    return a;
}

mat::batch_dense<double> rhs_from(const std::vector<double>& vals)
{
    mat::batch_dense<double> b(1, static_cast<index_type>(vals.size()), 1);
    std::copy(vals.begin(), vals.end(), b.item_values(0));
    return b;
}

solver::solve_result plain_solve(const solver::batch_matrix<double>& a,
                                 const mat::batch_dense<double>& b,
                                 mat::batch_dense<double>& x,
                                 const solver::solve_options& opts,
                                 xpu::fault_plan faults = {})
{
    xpu::exec_policy policy = xpu::make_sycl_policy();
    policy.faults = std::move(faults);
    xpu::queue q(policy);
    return solver::solve(q, a, b, x, opts);
}

std::vector<double> host_rhs_norms(const mat::batch_dense<double>& b)
{
    std::vector<double> norms(
        static_cast<std::size_t>(b.num_batch_items()));
    for (index_type i = 0; i < b.num_batch_items(); ++i) {
        double sum = 0.0;
        const double* vals = b.item_values(i);
        for (size_type k = 0; k < b.item_size(); ++k) {
            sum += vals[k] * vals[k];
        }
        norms[static_cast<std::size_t>(i)] = std::sqrt(sum);
    }
    return norms;
}

}  // namespace

// ---------------------------------------------------------------------
// Fault plans: deterministic schedules.
// ---------------------------------------------------------------------

TEST(FaultPlan, SameSeedSameSchedule)
{
    xpu::fault_schedule_config cfg;
    cfg.num_launches = 32;
    cfg.num_groups = 8;
    cfg.fault_rate = 0.5;
    cfg.max_phase = 12;
    const xpu::fault_plan a = xpu::random_fault_plan(42, cfg);
    const xpu::fault_plan b = xpu::random_fault_plan(42, cfg);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
    // Every event stays inside the configured ranges.
    for (const xpu::fault_event& ev : a.events) {
        EXPECT_LT(ev.launch, cfg.num_launches);
        EXPECT_GE(ev.group, 0);
        EXPECT_LT(ev.group, cfg.num_groups);
        EXPECT_GE(ev.phase, 0);
        EXPECT_LE(ev.phase, cfg.max_phase);
    }
}

TEST(FaultPlan, DistinctSeedsDecorrelate)
{
    const xpu::fault_schedule_config cfg;
    EXPECT_NE(xpu::random_fault_plan(1, cfg).events,
              xpu::random_fault_plan(2, cfg).events);
}

TEST(FaultPlan, ToStringCoversEveryEnumerator)
{
    EXPECT_EQ(xpu::to_string(xpu::fault_kind::launch_fail), "launch_fail");
    EXPECT_EQ(xpu::to_string(xpu::fault_kind::alloc_fail), "alloc_fail");
    EXPECT_EQ(xpu::to_string(xpu::fault_kind::poison), "poison");
    EXPECT_EQ(xpu::to_string(xpu::fault_target::slm), "slm");
    EXPECT_EQ(xpu::to_string(xpu::fault_target::spill), "spill");
    EXPECT_EQ(xpu::to_string(xpu::poison_mode::nan), "nan");
    EXPECT_EQ(xpu::to_string(xpu::poison_mode::bitflip), "bitflip");
}

// ---------------------------------------------------------------------
// Fault-injection fixtures (mirroring the test_xpu_check fixture style:
// each fixture schedules exactly one fault class and asserts its exact
// observable effect).
// ---------------------------------------------------------------------

namespace {

struct fault_fixture {
    solver::batch_matrix<double> a;
    mat::batch_dense<double> b;
    solver::solve_options opts;

    fault_fixture()
        : a(work::stencil_3pt<double>(4, 16, 3)),
          b(work::random_rhs<double>(4, 16, 5))
    {
        opts.solver = solver::solver_type::cg;
        opts.preconditioner = precond::type::jacobi;
        opts.criterion = stop::relative(1e-10, 200);
    }

    mat::batch_dense<double> fresh_x() const
    {
        return mat::batch_dense<double>(4, 16, 1);
    }
};

}  // namespace

TEST(FaultFixtures, LaunchFailThrowsDeviceErrorThenClears)
{
    fault_fixture fx;
    xpu::exec_policy policy = xpu::make_sycl_policy();
    policy.faults.events.push_back(
        {xpu::fault_kind::launch_fail, 0, 0, 1, xpu::fault_target::slm,
         xpu::poison_mode::nan});
    xpu::queue q(policy);
    mat::batch_dense<double> x = fx.fresh_x();
    EXPECT_THROW(solver::solve(q, fx.a, fx.b, x, fx.opts),
                 xpu::device_error);
    // The failed launch still consumed a launch id, so the identical
    // retry is a fresh launch the schedule no longer matches.
    EXPECT_EQ(q.launches_submitted(), 1u);
    const solver::solve_result result =
        solver::solve(q, fx.a, fx.b, x, fx.opts);
    EXPECT_EQ(result.log.num_converged(), 4);
    EXPECT_EQ(q.launches_submitted(), 2u);
}

TEST(FaultFixtures, DeviceErrorIsCatchableAsBatchlinError)
{
    // Recovery layers catch device_error specifically; everything else
    // still sees it as the library error type.
    fault_fixture fx;
    xpu::exec_policy policy = xpu::make_sycl_policy();
    policy.faults.events.push_back(
        {xpu::fault_kind::launch_fail, 0, 0, 1, xpu::fault_target::slm,
         xpu::poison_mode::nan});
    xpu::queue q(policy);
    mat::batch_dense<double> x = fx.fresh_x();
    EXPECT_THROW(solver::solve(q, fx.a, fx.b, x, fx.opts), bl::error);
}

TEST(FaultFixtures, AllocFailThrowsDeviceErrorThenClears)
{
    fault_fixture fx;
    xpu::exec_policy policy = xpu::make_sycl_policy();
    // First SLM allocation of group 2 throws mid-kernel.
    policy.faults.events.push_back(
        {xpu::fault_kind::alloc_fail, 0, 2, 0, xpu::fault_target::slm,
         xpu::poison_mode::nan});
    xpu::queue q(policy);
    mat::batch_dense<double> x = fx.fresh_x();
    EXPECT_THROW(solver::solve(q, fx.a, fx.b, x, fx.opts),
                 xpu::device_error);
    const solver::solve_result result =
        solver::solve(q, fx.a, fx.b, x, fx.opts);
    EXPECT_EQ(result.log.num_converged(), 4);
}

TEST(FaultFixtures, NanPoisonDrivesTargetedSystemNonFinite)
{
    // Sweep the strike phase: a NaN strike that lands on live workspace
    // must surface as `non_finite` on exactly the targeted system, and
    // systems the event does not target must be untouched at every phase.
    fault_fixture fx;
    bool saw_non_finite = false;
    for (index_type phase = 2; phase <= 12; ++phase) {
        mat::batch_dense<double> x = fx.fresh_x();
        xpu::fault_plan plan;
        plan.events.push_back(
            {xpu::fault_kind::poison, 0, 1, phase, xpu::fault_target::slm,
             xpu::poison_mode::nan});
        const solver::solve_result result =
            plain_solve(fx.a, fx.b, x, fx.opts, plan);
        const solve_status hit = result.log.status(1);
        EXPECT_TRUE(hit == solve_status::non_finite ||
                    hit == solve_status::converged)
            << "phase " << phase << ": " << bl::log::to_string(hit);
        saw_non_finite |= hit == solve_status::non_finite;
        for (const index_type healthy : {0, 2, 3}) {
            EXPECT_EQ(result.log.status(healthy), solve_status::converged)
                << "phase " << phase << " system " << healthy;
        }
    }
    EXPECT_TRUE(saw_non_finite)
        << "no phase in [2, 12] corrupted live CG workspace";
}

TEST(FaultFixtures, PoisonStrikeIsDeterministic)
{
    fault_fixture fx;
    xpu::fault_plan plan;
    plan.events.push_back({xpu::fault_kind::poison, 0, 1, 6,
                           xpu::fault_target::slm, xpu::poison_mode::nan});
    mat::batch_dense<double> x1 = fx.fresh_x();
    mat::batch_dense<double> x2 = fx.fresh_x();
    const solver::solve_result r1 = plain_solve(fx.a, fx.b, x1, fx.opts, plan);
    const solver::solve_result r2 = plain_solve(fx.a, fx.b, x2, fx.opts, plan);
    EXPECT_EQ(r1.log.all_statuses(), r2.log.all_statuses());
    EXPECT_EQ(r1.log.all_iterations(), r2.log.all_iterations());
    for (index_type i = 0; i < 4; ++i) {
        EXPECT_EQ(0, std::memcmp(x1.item_values(i), x2.item_values(i),
                                 x1.item_size() * sizeof(double)))
            << "system " << i << " diverged between identical runs";
    }
}

TEST(FaultFixtures, SpillPoisonHitsOnlyTheTargetedGroupsSlice)
{
    // A tiny SLM budget forces the planner to spill; the spill strike is
    // confined to the targeted group's own slice of the backing.
    fault_fixture fx;
    xpu::exec_policy policy = xpu::make_sycl_policy(1, 512);
    bool saw_non_finite = false;
    for (index_type phase = 2; phase <= 12; ++phase) {
        xpu::exec_policy faulted = policy;
        faulted.faults.events.push_back(
            {xpu::fault_kind::poison, 0, 1, phase, xpu::fault_target::spill,
             xpu::poison_mode::nan});
        xpu::queue q(faulted);
        mat::batch_dense<double> x = fx.fresh_x();
        const solver::solve_result result =
            solver::solve(q, fx.a, fx.b, x, fx.opts);
        saw_non_finite |= result.log.status(1) == solve_status::non_finite;
        for (const index_type healthy : {0, 2, 3}) {
            EXPECT_EQ(result.log.status(healthy), solve_status::converged)
                << "phase " << phase << " system " << healthy;
        }
    }
    EXPECT_TRUE(saw_non_finite)
        << "no spill strike in [2, 12] corrupted live workspace";
}

TEST(FaultFixtures, BitflipStaysFiniteAndDeterministic)
{
    // A bit flip is silent corruption: the run must stay finite-looking
    // (no status other than converged/max_iterations expected on this
    // well-conditioned batch) and bit-identical across repeats; catching
    // a wrong-but-finite result is the resilient verifier's job, tested
    // below.
    fault_fixture fx;
    xpu::fault_plan plan;
    plan.events.push_back({xpu::fault_kind::poison, 0, 2, 5,
                           xpu::fault_target::slm,
                           xpu::poison_mode::bitflip});
    mat::batch_dense<double> x1 = fx.fresh_x();
    mat::batch_dense<double> x2 = fx.fresh_x();
    const solver::solve_result r1 = plain_solve(fx.a, fx.b, x1, fx.opts, plan);
    const solver::solve_result r2 = plain_solve(fx.a, fx.b, x2, fx.opts, plan);
    EXPECT_EQ(r1.log.all_statuses(), r2.log.all_statuses());
    for (index_type i = 0; i < 4; ++i) {
        EXPECT_EQ(0, std::memcmp(x1.item_values(i), x2.item_values(i),
                                 x1.item_size() * sizeof(double)));
    }
}

TEST(FaultFixtures, EmptyPlanLeavesResultsBitIdentical)
{
    // The no-fault contract: a default (empty) plan must not perturb the
    // solve in any observable way.
    fault_fixture fx;
    mat::batch_dense<double> x1 = fx.fresh_x();
    mat::batch_dense<double> x2 = fx.fresh_x();
    const solver::solve_result r1 = plain_solve(fx.a, fx.b, x1, fx.opts);
    const solver::solve_result r2 =
        plain_solve(fx.a, fx.b, x2, fx.opts, xpu::fault_plan{});
    EXPECT_EQ(r1.log.all_statuses(), r2.log.all_statuses());
    for (index_type i = 0; i < 4; ++i) {
        EXPECT_EQ(0, std::memcmp(x1.item_values(i), x2.item_values(i),
                                 x1.item_size() * sizeof(double)));
    }
}

// ---------------------------------------------------------------------
// Breakdown taxonomy regressions on exact dyadic-rational fixtures. All
// arithmetic below is exact in binary floating point, so the breakdown
// scalars hit 0.0 exactly and the statuses are deterministic.
// ---------------------------------------------------------------------

TEST(BreakdownTaxonomy, CgDirectionAnnihilatedOnIndefiniteMatrix)
{
    // A = diag(1, -1), b = [1, 1]: p0 = b, A p0 = [1, -1], p'Ap = 0.
    const auto a = dense_pattern_csr(2, {{1, 0, 0, -1}});
    const auto b = rhs_from({1, 1});
    mat::batch_dense<double> x(1, 2, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.criterion = stop::relative(1e-12, 10);
    const solver::solve_result result = plain_solve(a, b, x, opts);
    EXPECT_EQ(result.log.status(0), solve_status::direction_annihilated);
    EXPECT_EQ(result.log.iterations(0), 0);
}

TEST(BreakdownTaxonomy, CgBreakdownRhoUnderJacobi)
{
    // A = [[1, 2], [2, -1]] with Jacobi: z0 = r0 / diag = [1, -1], so
    // rho0 = r0'z0 = 0 while p'Ap = -4 stays nonzero — the breakdown is
    // in the rho recurrence, not the search direction.
    const auto a = dense_pattern_csr(2, {{1, 2, 2, -1}});
    const auto b = rhs_from({1, 1});
    mat::batch_dense<double> x(1, 2, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-12, 10);
    const solver::solve_result result = plain_solve(a, b, x, opts);
    EXPECT_EQ(result.log.status(0), solve_status::breakdown_rho);
}

TEST(BreakdownTaxonomy, BicgstabBreakdownRhoWithNonzeroOmega)
{
    // After one exact BiCGSTAB step on this system, r1 = [0, -1/2, 1/2]
    // is orthogonal to r_hat = e1 while omega = 1/2 != 0: a genuine
    // shadow-residual breakdown that must NOT be labeled breakdown_omega.
    const auto a = dense_pattern_csr(3, {{1, 0, 2, 1, 1, 0, 0, 1, 1}});
    const auto b = rhs_from({1, 0, 0});
    mat::batch_dense<double> x(1, 3, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.criterion = stop::relative(1e-12, 10);
    const solver::solve_result result = plain_solve(a, b, x, opts);
    EXPECT_EQ(result.log.status(0), solve_status::breakdown_rho);
    EXPECT_EQ(result.log.iterations(0), 1);
}

TEST(BreakdownTaxonomy, BicgstabOmegaBreakdownIsNotMislabeledAsRho)
{
    // Regression for the silent mislabel: here t's0 = 0 makes omega = 0
    // at iteration 1, which ALSO zeroes the next rho_new — the loop-top
    // check order must report breakdown_omega, not breakdown_rho.
    const auto a = dense_pattern_csr(3, {{1, 1, 0, 1, 0, 1, 0, 1, 1}});
    const auto b = rhs_from({1, 0, 0});
    mat::batch_dense<double> x(1, 3, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.criterion = stop::relative(1e-12, 10);
    const solver::solve_result result = plain_solve(a, b, x, opts);
    EXPECT_EQ(result.log.status(0), solve_status::breakdown_omega);
}

TEST(BreakdownTaxonomy, HealthySystemInSameBatchIsUnaffected)
{
    // A breakdown fixture and a healthy SPD system share one batch: the
    // per-system taxonomy must keep them apart.
    const auto a = dense_pattern_csr(2, {{1, 0, 0, -1}, {4, 1, 1, 3}});
    mat::batch_dense<double> b(2, 2, 1);
    b.item_values(0)[0] = 1.0;
    b.item_values(0)[1] = 1.0;
    b.item_values(1)[0] = 1.0;
    b.item_values(1)[1] = 2.0;
    mat::batch_dense<double> x(2, 2, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.criterion = stop::relative(1e-12, 50);
    const solver::solve_result result = plain_solve(a, b, x, opts);
    EXPECT_EQ(result.log.status(0), solve_status::direction_annihilated);
    EXPECT_EQ(result.log.status(1), solve_status::converged);
}

TEST(BreakdownTaxonomy, StatusTaxonomyRoundTripsThroughSplitLog)
{
    const auto a = dense_pattern_csr(2, {{1, 0, 0, -1}, {4, 1, 1, 3}});
    mat::batch_dense<double> b(2, 2, 1);
    b.item_values(0)[0] = 1.0;
    b.item_values(0)[1] = 1.0;
    b.item_values(1)[0] = 1.0;
    b.item_values(1)[1] = 2.0;
    mat::batch_dense<double> x(2, 2, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.criterion = stop::relative(1e-12, 50);
    const solver::solve_result result = plain_solve(a, b, x, opts);
    const bl::log::batch_log head = solver::split_log(result.log, 0, 1);
    const bl::log::batch_log tail = solver::split_log(result.log, 1, 1);
    EXPECT_EQ(head.status(0), solve_status::direction_annihilated);
    EXPECT_EQ(tail.status(0), solve_status::converged);
}

// ---------------------------------------------------------------------
// Zero right-hand side: defined as immediately converged with x = 0.
// ---------------------------------------------------------------------

TEST(ZeroRhs, EverySolverShortCircuitsToExactZero)
{
    const index_type items = 2;
    const index_type rows = 16;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 3);
    mat::batch_dense<double> b(items, rows, 1);  // all-zero rhs
    for (const auto s :
         {solver::solver_type::cg, solver::solver_type::bicgstab,
          solver::solver_type::gmres, solver::solver_type::richardson}) {
        mat::batch_dense<double> x(items, rows, 1);
        for (index_type i = 0; i < items; ++i) {
            std::fill_n(x.item_values(i), x.item_size(), 7.0);
        }
        solver::solve_options opts;
        opts.solver = s;
        opts.preconditioner = precond::type::jacobi;
        opts.criterion = stop::relative(1e-10, 50);
        const solver::solve_result result = plain_solve(a, b, x, opts);
        for (index_type i = 0; i < items; ++i) {
            EXPECT_EQ(result.log.status(i), solve_status::converged)
                << solver::to_string(s);
            EXPECT_EQ(result.log.iterations(i), 0) << solver::to_string(s);
            EXPECT_EQ(result.log.residual_norm(i), 0.0)
                << solver::to_string(s);
            for (size_type k = 0; k < x.item_size(); ++k) {
                ASSERT_EQ(x.item_values(i)[k], 0.0)
                    << solver::to_string(s) << " left a nonzero iterate";
            }
        }
    }
}

TEST(ZeroRhs, AbsoluteToleranceDoesNotShortCircuit)
{
    // ||r|| <= tol is satisfiable with b = 0 the ordinary way; the
    // short circuit applies only to the relative criterion.
    EXPECT_FALSE(stop::zero_rhs_short_circuit(stop::absolute(1e-8), 0.0));
    EXPECT_TRUE(stop::zero_rhs_short_circuit(stop::relative(1e-8), 0.0));
    EXPECT_FALSE(stop::zero_rhs_short_circuit(stop::relative(1e-8), 0.5));
}

// ---------------------------------------------------------------------
// solve_resilient: fallback-chain recovery.
// ---------------------------------------------------------------------

TEST(Resilient, HealthyBatchConvergesFirstTry)
{
    const index_type items = 6;
    const index_type rows = 16;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 2);
    const auto b = work::random_rhs<double>(items, rows, 4);
    mat::batch_dense<double> x(items, rows, 1);
    solver::solve_options primary;
    primary.solver = solver::solver_type::cg;
    primary.preconditioner = precond::type::jacobi;
    primary.criterion = stop::relative(1e-8, 200);

    xpu::queue q(xpu::make_sycl_policy());
    const solver::resilient_result result = solver::solve_resilient(
        q, a, b, x, solver::default_chain(primary));
    EXPECT_EQ(result.first_try, items);
    EXPECT_EQ(result.recovered, 0);
    EXPECT_EQ(result.failed, 0);
    EXPECT_EQ(result.launch_retries_used, 0);
    for (index_type i = 0; i < items; ++i) {
        EXPECT_EQ(result.history[static_cast<std::size_t>(i)].size(), 1u);
        EXPECT_EQ(result.log.status(i), solve_status::converged);
    }
    // Exactly one launch: the healthy path never enters the chain.
    EXPECT_EQ(q.launches_submitted(), 1u);
}

TEST(Resilient, BreakdownSystemRecoversDownTheChain)
{
    // Item 0 breaks CG down (indefinite diagonal); item 1 is healthy SPD.
    const solver::batch_matrix<double> a =
        dense_pattern_csr(2, {{1, 0, 0, -1}, {4, 1, 1, 3}});
    mat::batch_dense<double> b(2, 2, 1);
    b.item_values(0)[0] = 1.0;
    b.item_values(0)[1] = 1.0;
    b.item_values(1)[0] = 1.0;
    b.item_values(1)[1] = 2.0;
    mat::batch_dense<double> x(2, 2, 1);
    solver::solve_options primary;
    primary.solver = solver::solver_type::cg;
    primary.criterion = stop::relative(1e-10, 50);

    xpu::queue q(xpu::make_sycl_policy());
    const solver::resilient_result result = solver::solve_resilient(
        q, a, b, x, solver::default_chain(primary));
    EXPECT_EQ(result.first_try, 1);
    EXPECT_EQ(result.recovered, 1);
    EXPECT_EQ(result.failed, 0);
    EXPECT_EQ(result.log.status(0), solve_status::converged);
    EXPECT_EQ(result.log.status(1), solve_status::converged);
    // The recovered system carries its full attempt history: the primary
    // breakdown plus every chain stage it went through.
    EXPECT_GE(result.history[0].size(), 2u);
    EXPECT_EQ(result.history[0].front().status,
              solve_status::direction_annihilated);
    EXPECT_EQ(result.history[0].back().status, solve_status::converged);
    EXPECT_EQ(result.history[1].size(), 1u);
    // diag(1, -1) x = [1, 1] has the exact solution [1, -1].
    EXPECT_NEAR(x.item_values(0)[0], 1.0, 1e-8);
    EXPECT_NEAR(x.item_values(0)[1], -1.0, 1e-8);
}

TEST(Resilient, SingularSystemEndsWithSingularStatus)
{
    // Rank-1 A with inconsistent b: no stage can converge; the terminal
    // direct stage must label it `singular`, and the healthy companion
    // must be untouched by the repeated re-solves.
    const solver::batch_matrix<double> a =
        dense_pattern_csr(2, {{1, 1, 1, 1}, {4, 1, 1, 3}});
    mat::batch_dense<double> b(2, 2, 1);
    b.item_values(0)[0] = 1.0;
    b.item_values(0)[1] = 0.0;
    b.item_values(1)[0] = 1.0;
    b.item_values(1)[1] = 2.0;
    mat::batch_dense<double> x(2, 2, 1);
    solver::solve_options primary;
    primary.solver = solver::solver_type::cg;
    primary.criterion = stop::relative(1e-10, 40);

    xpu::queue q(xpu::make_sycl_policy());
    const solver::resilient_result result = solver::solve_resilient(
        q, a, b, x, solver::default_chain(primary));
    EXPECT_EQ(result.failed, 1);
    EXPECT_EQ(result.log.status(0), solve_status::singular);
    EXPECT_EQ(result.log.status(1), solve_status::converged);
    // All four stages ran the singular system; none claimed success.
    EXPECT_EQ(result.history[0].size(), 4u);
    for (const solver::attempt_record& rec : result.history[0]) {
        EXPECT_NE(rec.status, solve_status::converged);
    }
}

TEST(Resilient, LaunchFaultIsRetriedTransparently)
{
    const index_type items = 4;
    const index_type rows = 16;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 6);
    const auto b = work::random_rhs<double>(items, rows, 7);
    mat::batch_dense<double> x(items, rows, 1);
    solver::solve_options primary;
    primary.solver = solver::solver_type::cg;
    primary.preconditioner = precond::type::jacobi;
    primary.criterion = stop::relative(1e-8, 200);

    xpu::exec_policy policy = xpu::make_sycl_policy();
    policy.faults.events.push_back(
        {xpu::fault_kind::launch_fail, 0, 0, 1, xpu::fault_target::slm,
         xpu::poison_mode::nan});
    xpu::queue q(policy);
    const solver::resilient_result result = solver::solve_resilient(
        q, a, b, x, solver::default_chain(primary));
    EXPECT_EQ(result.first_try, items);
    EXPECT_EQ(result.failed, 0);
    EXPECT_EQ(result.launch_retries_used, 1);
}

TEST(Resilient, ExhaustedRetriesMarkEverySystemDeviceFault)
{
    const index_type items = 3;
    const index_type rows = 16;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 6);
    const auto b = work::random_rhs<double>(items, rows, 7);
    mat::batch_dense<double> x(items, rows, 1);
    solver::solve_options primary;
    primary.solver = solver::solver_type::cg;
    primary.criterion = stop::relative(1e-8, 200);

    // Single-stage chain, one retry, faults on every launch it may try.
    solver::resilient_options opts;
    opts.chain.push_back({primary, false});
    opts.launch_retries = 1;
    xpu::exec_policy policy = xpu::make_sycl_policy();
    for (std::uint64_t launch = 0; launch < 4; ++launch) {
        policy.faults.events.push_back(
            {xpu::fault_kind::launch_fail, launch, 0, 1,
             xpu::fault_target::slm, xpu::poison_mode::nan});
    }
    xpu::queue q(policy);
    const solver::resilient_result result =
        solver::solve_resilient(q, a, b, x, opts);
    EXPECT_EQ(result.failed, items);
    for (index_type i = 0; i < items; ++i) {
        EXPECT_EQ(result.log.status(i), solve_status::device_fault);
    }
}

TEST(Resilient, VerifierCatchesSilentBitflipCorruption)
{
    // End-to-end guarantee against silent finite corruption: under any
    // bitflip strike, a system the final log reports `converged` must
    // actually satisfy the (slackened) stop criterion on the explicit
    // residual — the verifier demotes and re-solves everything else.
    const index_type items = 4;
    const index_type rows = 16;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 9);
    const auto b = work::random_rhs<double>(items, rows, 10);
    solver::solve_options primary;
    primary.solver = solver::solver_type::cg;
    primary.preconditioner = precond::type::jacobi;
    primary.criterion = stop::relative(1e-8, 200);
    const auto rhs_norms = host_rhs_norms(b);

    for (index_type phase = 2; phase <= 10; ++phase) {
        mat::batch_dense<double> x(items, rows, 1);
        xpu::exec_policy policy = xpu::make_sycl_policy();
        policy.faults.events.push_back(
            {xpu::fault_kind::poison, 0, 2, phase, xpu::fault_target::slm,
             xpu::poison_mode::bitflip});
        xpu::queue q(policy);
        const solver::resilient_options opts =
            solver::default_chain(primary);
        const solver::resilient_result result =
            solver::solve_resilient(q, a, b, x, opts);
        const std::vector<double> explicit_res =
            solver::residual_norms(a, b, x);
        for (index_type i = 0; i < items; ++i) {
            ASSERT_EQ(result.log.status(i), solve_status::converged)
                << "phase " << phase;
            const double target = primary.criterion.tolerance *
                                  rhs_norms[static_cast<std::size_t>(i)] *
                                  opts.verify_slack;
            ASSERT_LE(explicit_res[static_cast<std::size_t>(i)], target)
                << "phase " << phase << " system " << i
                << " claims convergence with a bad explicit residual";
        }
    }
}

TEST(Resilient, EmptyChainIsRejected)
{
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(1, 8, 1);
    const auto b = work::random_rhs<double>(1, 8, 2);
    mat::batch_dense<double> x(1, 8, 1);
    xpu::queue q(xpu::make_sycl_policy());
    EXPECT_THROW(
        solver::solve_resilient(q, a, b, x, solver::resilient_options{}),
        bl::error);
}

TEST(Resilient, DefaultChainShape)
{
    solver::solve_options primary;
    primary.solver = solver::solver_type::cg;
    primary.criterion = stop::relative(1e-8, 100);
    const solver::resilient_options opts = solver::default_chain(primary);
    ASSERT_EQ(opts.chain.size(), 4u);
    EXPECT_EQ(opts.chain[0].opts.solver, solver::solver_type::cg);
    EXPECT_FALSE(opts.chain[0].direct);
    EXPECT_EQ(opts.chain[1].opts.solver, solver::solver_type::bicgstab);
    EXPECT_GE(opts.chain[1].opts.criterion.max_iterations, 200);
    EXPECT_EQ(opts.chain[2].opts.solver, solver::solver_type::gmres);
    EXPECT_GE(opts.chain[2].opts.gmres_restart, 30);
    EXPECT_TRUE(opts.chain[3].direct);
}

// ---------------------------------------------------------------------
// Singular / indefinite sweep across the solver x preconditioner grid:
// no cell may claim convergence on an inconsistent singular system, and
// any non-finite recurrence must be labeled as such.
// ---------------------------------------------------------------------

TEST(SingularSweep, NoSolverClaimsConvergenceOnInconsistentSystem)
{
    const auto a = dense_pattern_csr(
        4, {{1, 1, 0, 0, 1, 1, 0, 0, 0, 0, 2, 1, 0, 0, 1, 2}});
    const auto b = rhs_from({1, 0, 1, 1});
    for (const auto s :
         {solver::solver_type::cg, solver::solver_type::bicgstab,
          solver::solver_type::gmres, solver::solver_type::richardson}) {
        // ISAI is excluded: its generation throws host-side on singular
        // local systems before any kernel runs.
        for (const auto pc : {precond::type::none, precond::type::jacobi}) {
            mat::batch_dense<double> x(1, 4, 1);
            solver::solve_options opts;
            opts.solver = s;
            opts.preconditioner = pc;
            opts.gmres_restart = 4;
            opts.criterion = stop::relative(1e-12, 30);
            const solver::solve_result result = plain_solve(a, b, x, opts);
            const solve_status status = result.log.status(0);
            EXPECT_NE(status, solve_status::converged)
                << solver::to_string(s) << "/" << precond::to_string(pc);
            if (!std::isfinite(result.log.residual_norm(0))) {
                EXPECT_EQ(status, solve_status::non_finite)
                    << solver::to_string(s) << "/" << precond::to_string(pc)
                    << " hid a non-finite residual behind "
                    << bl::log::to_string(status);
            }
        }
    }
}

TEST(SingularSweep, DirectSolverReportsSingular)
{
    const auto a = dense_pattern_csr(2, {{1, 1, 1, 1}});
    const auto b = rhs_from({1, 0});
    mat::batch_dense<double> x(1, 2, 1);
    bl::log::batch_log logger(1);
    xpu::queue q(xpu::make_sycl_policy());
    solver::run_dense_lu(q, std::get<mat::batch_csr<double>>(
                                solver::batch_matrix<double>(a)),
                         b, x, logger, {0, 1});
    EXPECT_EQ(logger.status(0), solve_status::singular);
    EXPECT_EQ(logger.num_converged(), 0);
    EXPECT_EQ(logger.count_status(solve_status::singular), 1);
}

// ---------------------------------------------------------------------
// Randomized fault soak (acceptance criterion): >= 1000 resilient solves
// under randomized-but-deterministic schedules. Every system must end in
// a terminal status, every claimed convergence must hold up against the
// explicit residual, and the same seed must replay the same schedule.
// ---------------------------------------------------------------------

TEST(FaultSoak, ThousandSolvesUnderRandomizedSchedules)
{
    const index_type items = 18;
    const index_type rows = 16;
    xpu::fault_schedule_config cfg;
    cfg.num_launches = 10;
    cfg.num_groups = items;
    cfg.fault_rate = 0.4;
    cfg.max_phase = 16;

    solver::solve_options primary;
    primary.solver = solver::solver_type::cg;
    primary.preconditioner = precond::type::jacobi;
    primary.criterion = stop::relative(1e-8, 150);

    index_type total_systems = 0;
    index_type total_recovered = 0;
    index_type total_failed = 0;
    for (unsigned trial = 0; trial < 60; ++trial) {
        const unsigned seed = 1000 + 17 * trial;
        const xpu::fault_plan plan = xpu::random_fault_plan(seed, cfg);
        // Same seed => identical schedule, the reproducibility contract.
        ASSERT_EQ(plan, xpu::random_fault_plan(seed, cfg));

        const solver::batch_matrix<double> a =
            work::stencil_3pt<double>(items, rows, trial + 1);
        const auto b = work::random_rhs<double>(items, rows, trial + 101);
        mat::batch_dense<double> x(items, rows, 1);

        xpu::exec_policy policy = xpu::make_sycl_policy();
        policy.faults = plan;
        xpu::queue q(policy);
        const solver::resilient_options opts =
            solver::default_chain(primary);
        const solver::resilient_result result =
            solver::solve_resilient(q, a, b, x, opts);

        total_systems += items;
        total_recovered += result.recovered;
        total_failed += result.failed;
        // Terminal accounting: every system is exactly one of first-try
        // healthy, recovered, or failed, and carries a non-empty history.
        ASSERT_EQ(result.first_try + result.recovered + result.failed,
                  items);
        for (index_type i = 0; i < items; ++i) {
            ASSERT_FALSE(
                result.history[static_cast<std::size_t>(i)].empty());
        }

        const std::vector<double> explicit_res =
            solver::residual_norms(a, b, x);
        const std::vector<double> rhs_norms = host_rhs_norms(b);
        for (index_type i = 0; i < items; ++i) {
            const std::size_t si = static_cast<std::size_t>(i);
            if (result.log.status(i) == solve_status::converged) {
                ASSERT_LE(explicit_res[si],
                          primary.criterion.tolerance * rhs_norms[si] *
                              opts.verify_slack)
                    << "trial " << trial << " system " << i;
            } else {
                // A failed system must say why, and "failed" never means
                // an unexplained max_iterations on this easy spectrum.
                ASSERT_NE(result.log.status(i), solve_status::converged);
            }
        }
    }
    EXPECT_GE(total_systems, 1000);
    // The schedules are dense enough that recovery work actually ran.
    EXPECT_GT(total_recovered + total_failed, 0)
        << "the soak never injected an effective fault";
    RecordProperty("soak_systems", total_systems);
    RecordProperty("soak_recovered", total_recovered);
    RecordProperty("soak_failed", total_failed);
}
