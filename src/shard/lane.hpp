// shard::lane — per-shard runtime state of the sharded serve layer, and
// the per-shard circuit breaker.
//
// One lane per registry entry: its run-queue (windowed modes) or MPMC
// ring (persistent mode), the backlog estimate the router balances on,
// the breaker and fault accounting that isolate a misbehaving shard, and
// the per-shard counters `serve::stats` exposes. The lane itself holds no
// threads and no locks: the windowed fields are guarded by the service
// mutex, the ring and the atomics are lock-free, and the `xpu::queue`s
// executing a lane's work are owned by the service's worker threads (one
// queue per worker, the single-threaded contract `xpu::queue` documents).
//
// The struct is templated on the queued entry pointer so this header
// does not depend on the serve layer's pending-entry internals (which in
// turn include this header's sibling registry).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>

#include "conc/shim.hpp"
#include "perfmodel/device_spec.hpp"
#include "serve/ring.hpp"
#include "util/math.hpp"
#include "xpu/policy.hpp"

namespace batchlin::shard {

/// Per-shard circuit breaker over the PR 5 fault taxonomy: when the
/// faulted fraction of the last `window` fused launches reaches
/// `fault_ratio`, the shard suspends coalescing for `cooldown` launches
/// (its workers degrade to solo/native solves) while the other shards
/// keep serving fused batches. State is guarded by the service mutex;
/// `suspended` mirrors `remaining > 0` for lock-free readers (the
/// persistent loop checks it per batch).
struct breaker {
    std::uint32_t window_count = 0;
    std::uint32_t window_faulted = 0;
    /// Remaining launches of a tripped breaker's cooldown; > 0 suspends
    /// coalescing on this shard.
    std::uint32_t remaining = 0;
    std::uint64_t trips = 0;
    conc::atomic<bool> suspended{false};

    bool active() const { return remaining > 0; }

    /// One observation per fused execution (`faulted` when any attempt
    /// faulted). During cooldown the window stays frozen and each solo
    /// execution counts the cooldown down. Returns whether this
    /// observation tripped the breaker.
    bool observe(bool faulted, double fault_ratio, std::uint32_t window,
                 std::uint32_t cooldown)
    {
        bool tripped = false;
        if (remaining > 0) {
            --remaining;
        } else {
            ++window_count;
            if (faulted) {
                ++window_faulted;
            }
            if (window > 0 && window_count >= window) {
                const double ratio = static_cast<double>(window_faulted) /
                                     static_cast<double>(window_count);
                if (ratio >= fault_ratio && cooldown > 0) {
                    ++trips;
                    remaining = cooldown;
                    tripped = true;
                }
                window_count = 0;
                window_faulted = 0;
            }
        }
        suspended.store(remaining > 0, std::memory_order_release);
        return tripped;
    }
};

/// Health of a lane in the failover state machine (PR 10). Values are
/// ordered so lock-free readers can treat anything != healthy as
/// "do not route here".
enum class lane_state : std::uint32_t {
    /// Serving normally; full weight in rendezvous routing.
    healthy = 0,
    /// Declared lost (exhausted retries on a device error, or the
    /// watchdog saw a wedged launch). No routing, queue drained and
    /// migrated; workers send half-open probes on a cooldown.
    evicted = 1,
    /// A single half-open probe is in flight; other workers keep
    /// treating the lane as evicted until the probe resolves.
    probing = 2,
};

/// Lock-free eviction/probe state machine of one lane — the shard-level
/// analogue of the coalescing breaker above, but with a half-open state:
/// evicted -> probing admits exactly one synthetic probe batch (CAS), a
/// success restores full routing weight, a failure re-trips the eviction
/// and re-arms the probe cooldown. All transitions are CAS/store on one
/// atomic word so workers, the watchdog, and submitters never need the
/// service mutex to ask "is this lane alive?".
struct lane_guard {
    conc::atomic<std::uint32_t> state{
        static_cast<std::uint32_t>(lane_state::healthy)};
    conc::atomic<std::uint64_t> evictions{0};
    conc::atomic<std::uint64_t> probes{0};
    conc::atomic<std::uint64_t> probe_successes{0};
    conc::atomic<std::uint64_t> probe_failures{0};

    lane_state current() const
    {
        return static_cast<lane_state>(
            state.load(std::memory_order_acquire));
    }

    /// Routable: healthy lanes only (a probing lane is still suspect).
    bool available() const { return current() == lane_state::healthy; }

    /// healthy -> evicted. Exactly one caller wins when workers and the
    /// watchdog race to declare the same lane lost.
    bool try_evict()
    {
        std::uint32_t expected =
            static_cast<std::uint32_t>(lane_state::healthy);
        if (state.compare_exchange_strong(
                expected, static_cast<std::uint32_t>(lane_state::evicted),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
            evictions.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    /// evicted -> probing. Admits exactly one half-open probe at a time.
    bool try_begin_probe()
    {
        std::uint32_t expected =
            static_cast<std::uint32_t>(lane_state::evicted);
        if (state.compare_exchange_strong(
                expected, static_cast<std::uint32_t>(lane_state::probing),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
            probes.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    /// probing -> healthy: the probe solved cleanly, restore full weight.
    void probe_succeeded()
    {
        probe_successes.fetch_add(1, std::memory_order_relaxed);
        state.store(static_cast<std::uint32_t>(lane_state::healthy),
                    std::memory_order_release);
    }

    /// probing -> evicted: the device is still gone; re-arm the cooldown.
    void probe_failed()
    {
        probe_failures.fetch_add(1, std::memory_order_relaxed);
        state.store(static_cast<std::uint32_t>(lane_state::evicted),
                    std::memory_order_release);
    }
};

/// Runtime state of one shard. Not movable (atomics); the service keeps
/// lanes in a deque for address stability.
template <typename EntryPtr>
struct lane {
    index_type id = 0;
    /// The emulated device (routing costs, stats labels, modeled busy
    /// time).
    perf::device_spec spec;
    /// Policy this lane's worker queues are built from (registry entry
    /// policy plus any per-shard injected fault schedule).
    xpu::exec_policy policy;

    /// Windowed-mode run-queue, guarded by the service mutex.
    std::deque<EntryPtr> queue;
    size_type queued_systems = 0;

    /// Persistent-mode admission ring (null in the windowed modes) and
    /// its system count — the steal-victim depth signal.
    std::unique_ptr<serve::mpmc_ring<EntryPtr>> ring;
    conc::atomic<size_type> ring_systems{0};

    /// Estimated nanoseconds of routed-but-uncompleted work (the router
    /// cost model); read lock-free by the router, moved between lanes
    /// when work is stolen. conc::atomic (= std::atomic in the default
    /// build): the backlog books-balance property in tests/test_conc.cpp
    /// model-checks the submit/steal/retire transfers on these counters.
    conc::atomic<std::int64_t> backlog_ns{0};

    breaker brk;

    /// Failover state machine (PR 10): eviction + half-open probing.
    lane_guard guard;
    /// steady_clock nanoseconds at which the currently-executing launch
    /// started, 0 when no launch is in flight. The watchdog compares it
    /// against the hang timeout to detect a wedged device. With one
    /// worker per lane this is exact; with several it tracks the oldest
    /// still-running launch (first CAS from 0 wins, cleared by the owner).
    conc::atomic<std::int64_t> launch_started_ns{0};
    /// Liveness heartbeat: bumped once per worker-loop iteration; a lane
    /// whose heartbeat stalls while work is queued is wedged in a way the
    /// launch-age signal alone cannot see. Exposed in stats.
    conc::atomic<std::uint64_t> heartbeat{0};
    /// steady_clock nanoseconds of the eviction (or last failed probe);
    /// the probe cooldown is measured from here.
    conc::atomic<std::int64_t> evicted_at_ns{0};
    /// Consecutive fused executions that exhausted their launch retries
    /// with a device error (reset on any success). Reaching
    /// `service_config::evict_after_exhausted` declares the shard lost.
    conc::atomic<std::uint32_t> consecutive_exhausted{0};
    /// Requests/systems migrated OFF this lane by failover drains.
    conc::atomic<std::uint64_t> migrated_requests{0};
    conc::atomic<std::uint64_t> migrated_systems{0};

    /// Submission-side counters (atomic: bumped on submitter threads,
    /// outside the service mutex in persistent mode).
    conc::atomic<std::uint64_t> routed_requests{0};
    conc::atomic<std::uint64_t> routed_systems{0};
    /// Steals this lane's workers performed as the thief (atomic: the
    /// persistent loop bumps them outside the mutex).
    conc::atomic<std::uint64_t> steals{0};
    conc::atomic<std::uint64_t> stolen_systems{0};

    /// Completion-side counters, guarded by the service mutex (updated
    /// in the workers' post-batch bookkeeping).
    std::uint64_t completed_systems = 0;
    std::uint64_t batches_launched = 0;
    std::uint64_t launch_faults = 0;
    /// Modeled device-busy nanoseconds accumulated by this shard's fused
    /// launches (the router cost model applied to the fused sizes that
    /// actually ran). On a host whose single core serializes all shards,
    /// this is what the scaling shape of the shard sweep is measured on.
    std::uint64_t modeled_busy_ns = 0;
};

}  // namespace batchlin::shard
