// Shared infrastructure of the fused batched solver kernels.
//
// Every solver follows the same shape (paper §3.2–§3.5): one launch, one
// work-group per system, workspace vectors bound SLM-or-global according to
// the planner, preconditioner generated in-kernel, per-system convergence
// monitoring recorded to the logger. The binder below hands each kernel its
// vectors in exactly the planner's priority order.
#pragma once

#include "log/logger.hpp"
#include "matrix/batch_dense.hpp"
#include "solver/launch.hpp"
#include "solver/workspace.hpp"
#include "stop/criterion.hpp"
#include "xpu/group.hpp"
#include "xpu/queue.hpp"

namespace batchlin::solver {

/// Binds the resolved plan's slots to storage for one work-group: SLM
/// slots are carved from the group's arena, spilled slots from this
/// group's slice of the global backing array. Slots MUST be taken in plan
/// order. Binding is index arithmetic only — the planner's names are
/// verified against the kernel's take() order in debug builds and compiled
/// away in release, so no work-group pays a string comparison.
template <typename T>
class workspace_binder {
public:
    workspace_binder(xpu::group& g, const bound_plan& plan,
                     T* group_backing)
        : g_(g), plan_(plan), backing_(group_backing)
    {
        // With a poison fault armed on this group, narrow the strike's
        // spill target to this group's own backing slice — the default is
        // no spill region, so a strike never touches another group's
        // memory. Off the hot path: one branch when no fault is armed.
        if (g_.fault_armed()) {
            register_spill_region();
        }
    }

    /// Takes the next slot, which must correspond to the planner entry
    /// named `name` (kernels and the priority lists must agree exactly;
    /// checked in debug builds).
    xpu::dspan<T> take(const char* name)
    {
        BATCHLIN_ENSURE_MSG(
            next_ < plan_.size(),
            "kernel requested more workspace entries than planned");
        plan_.check_name(next_, name);
        const bound_plan::slot& s = plan_[next_];
        ++next_;
        if (s.in_slm) {
            return g_.slm().alloc<T>(static_cast<index_type>(s.elems));
        }
        xpu::dspan<T> out{backing_ + s.spill_offset,
                          static_cast<index_type>(s.elems),
                          xpu::mem_space::global};
#ifdef BATCHLIN_XPU_CHECK
        // Spill slots are tracked like SLM allocations. A zero-filled
        // backing starts defined; with zero_spill off (the serve:: hot
        // path) every read-before-write is a real bug the skipped fill
        // would otherwise hide.
        if (xpu::check::group_checker* chk = g_.checker()) {
            out.tag = chk->register_global_region(
                s.elems * static_cast<size_type>(sizeof(T)),
                plan_.zero_spill());
        }
#endif
        return out;
    }

    /// Takes the trailing optional slot (the preconditioner workspace)
    /// when the plan has one; returns an empty span otherwise.
    xpu::dspan<T> take_optional(const char* name)
    {
        if (next_ < plan_.size()) {
            return take(name);
        }
        return {};
    }

private:
    void register_spill_region()
    {
        size_type elems = 0;
        for (index_type i = 0; i < plan_.size(); ++i) {
            const bound_plan::slot& s = plan_[i];
            if (!s.in_slm && s.spill_offset + s.elems > elems) {
                elems = s.spill_offset + s.elems;
            }
        }
        if (elems > 0) {
            g_.note_global_region(
                reinterpret_cast<std::byte*>(backing_),
                elems * static_cast<size_type>(sizeof(T)));
        }
    }

    xpu::group& g_;
    const bound_plan& plan_;
    T* backing_;
    index_type next_ = 0;
};

/// Non-owning view of a launch's spilled-workspace backing. This is what
/// the recordable kernels capture by value: two words, no lifetime of its
/// own, valid as long as the backing it points into (the queue's scratch
/// pool for eager launches, a `recorded_solve`'s owned buffer for graphs).
template <typename T>
struct spill_view {
    T* data = nullptr;
    size_type per_group = 0;

    T* for_group(index_type local_group) const
    {
        return data + static_cast<size_type>(local_group) * per_group;
    }
};

/// Spilled-workspace backing of one launch: a contiguous slice of
/// `plan.global_elems_per_group` per work-group, carved from the queue's
/// scratch pool so repeated solves reuse one allocation. By default the
/// backing is zeroed per launch, exactly like the per-launch vector it
/// replaces; `plan.zero_spill == false` (the serve:: hot path) skips the
/// fill, which is safe because the kernels overwrite every spilled
/// element before reading it.
template <typename T>
struct spill_buffer {
    spill_buffer(xpu::queue& q, const slm_plan& plan, index_type num_groups)
        : per_group(plan.global_elems_per_group),
          data(reinterpret_cast<T*>(q.scratch().acquire(
              per_group * static_cast<size_type>(num_groups) * sizeof(T),
              plan.zero_spill)))
    {}

    T* for_group(index_type local_group)
    {
        return data + static_cast<size_type>(local_group) * per_group;
    }

    spill_view<T> view() const { return {data, per_group}; }

    size_type per_group;
    T* data;
};

/// Records one system's outcome: logger entry plus iteration counter.
template <typename T>
void record_outcome(xpu::group& g, log::batch_log& logger, index_type batch,
                    index_type iterations, T residual_norm,
                    log::solve_status status)
{
    logger.record(batch, iterations, static_cast<double>(residual_norm),
                  status);
    g.stats().total_iterations += static_cast<double>(iterations);
}

}  // namespace batchlin::solver
