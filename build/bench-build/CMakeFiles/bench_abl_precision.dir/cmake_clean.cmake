file(REMOVE_RECURSE
  "../bench/bench_abl_precision"
  "../bench/bench_abl_precision.pdb"
  "CMakeFiles/bench_abl_precision.dir/bench_abl_precision.cpp.o"
  "CMakeFiles/bench_abl_precision.dir/bench_abl_precision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
