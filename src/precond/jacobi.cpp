#include "precond/jacobi.hpp"

#include "util/error.hpp"

namespace batchlin::precond {

template <typename T, typename S>
jacobi<T, S>::jacobi(const mat::batch_csr<T>& a)
    : diag_positions_(a.diagonal_positions())
{
    for (index_type i = 0; i < a.rows(); ++i) {
        BATCHLIN_ENSURE_MSG(diag_positions_[i] >= 0,
                            "scalar Jacobi requires every diagonal entry in "
                            "the sparsity pattern");
    }
}

template <typename T, typename S>
typename jacobi<T, S>::applier jacobi<T, S>::generate(
    xpu::group& g, const blas::csr_view<T, S>& a, xpu::dspan<T> work) const
{
    // The reciprocal is formed in compute precision and narrowed on store:
    // a preconditioner only needs to approximate A^{-1}, so fp32 inverse
    // diagonals cost nothing the refinement loop can't recover.
    xpu::dspan<S> inv = xpu::reinterpret_span<S>(work, a.rows);
    const index_type* diag_pos = diag_positions_.data();
    g.for_items(a.rows, [&](index_type i) {
        inv[i] = static_cast<S>(T{1} /
                                static_cast<T>(a.values[diag_pos[i]]));
    });
    g.stats().flops += static_cast<double>(a.rows);
    blas::detail::charge_read(g, a.values, a.rows);
    blas::detail::charge_write(g, inv, a.rows);
    return {inv};
}

template <typename T, typename S>
typename jacobi<T, S>::applier jacobi<T, S>::generate(
    xpu::group& g, const blas::ell_view<T, S>& a, xpu::dspan<T> work) const
{
    xpu::dspan<S> inv = xpu::reinterpret_span<S>(work, a.rows);
    g.for_items(a.rows, [&](index_type i) {
        T diag{1};
        for (index_type k = 0; k < a.width; ++k) {
            if (a.col_idxs[k * a.rows + i] == i) {
                diag = static_cast<T>(a.values[k * a.rows + i]);
                break;
            }
        }
        inv[i] = static_cast<S>(T{1} / diag);
    });
    g.stats().flops += static_cast<double>(a.rows);
    blas::detail::charge_read(g, a.values, a.rows);
    blas::detail::charge_write(g, inv, a.rows);
    return {inv};
}

template <typename T, typename S>
typename jacobi<T, S>::applier jacobi<T, S>::generate(
    xpu::group& g, const blas::dense_view<T, S>& a, xpu::dspan<T> work) const
{
    xpu::dspan<S> inv = xpu::reinterpret_span<S>(work, a.rows);
    g.for_items(a.rows, [&](index_type i) {
        inv[i] = static_cast<S>(
            T{1} / static_cast<T>(a.values[i * a.cols + i]));
    });
    g.stats().flops += static_cast<double>(a.rows);
    blas::detail::charge_read(g, a.values, a.rows);
    blas::detail::charge_write(g, inv, a.rows);
    return {inv};
}

template class jacobi<float>;
template class jacobi<double>;
template class jacobi<double, float>;

}  // namespace batchlin::precond
