# Empty compiler generated dependencies file for convergence_history.
# This may be replaced when dependencies are built.
