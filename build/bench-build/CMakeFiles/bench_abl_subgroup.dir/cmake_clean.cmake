file(REMOVE_RECURSE
  "../bench/bench_abl_subgroup"
  "../bench/bench_abl_subgroup.pdb"
  "CMakeFiles/bench_abl_subgroup.dir/bench_abl_subgroup.cpp.o"
  "CMakeFiles/bench_abl_subgroup.dir/bench_abl_subgroup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_subgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
