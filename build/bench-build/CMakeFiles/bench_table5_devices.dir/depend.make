# Empty dependencies file for bench_table5_devices.
# This may be replaced when dependencies are built.
