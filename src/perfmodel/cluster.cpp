#include "perfmodel/cluster.hpp"

#include "util/error.hpp"

namespace batchlin::perf {

cluster_spec aurora_node(index_type num_gpus)
{
    BATCHLIN_ENSURE_MSG(num_gpus >= 1 && num_gpus <= 6,
                        "an Aurora node carries up to six PVC GPUs");
    return {pvc_2s(), num_gpus, 50.0};
}

cluster_time estimate_cluster_time(const cluster_spec& cluster,
                                   const solve_profile& whole_batch)
{
    BATCHLIN_ENSURE_MSG(cluster.num_devices >= 1,
                        "cluster needs at least one device");
    cluster_time result;
    result.max_items_per_device =
        ceil_div(whole_batch.num_systems, cluster.num_devices);

    // The busiest rank's share of the batch; batch entries are
    // independent, so its counters are the proportional slice.
    solve_profile rank = whole_batch;
    const double share = static_cast<double>(result.max_items_per_device) /
                         whole_batch.num_systems;
    rank.totals = scale_counters(whole_batch.totals, share);
    rank.num_systems = result.max_items_per_device;

    result.device_seconds =
        estimate_time(cluster.device, rank).total_seconds;
    result.overhead_seconds = cluster.distribution_overhead_us * 1e-6;
    result.total_seconds = result.device_seconds + result.overhead_seconds;

    const double single =
        estimate_time(cluster.device, whole_batch).total_seconds;
    result.speedup = single / result.total_seconds;
    result.efficiency = result.speedup / cluster.num_devices;
    return result;
}

}  // namespace batchlin::perf
