#include "xpu/graph.hpp"

#include "util/error.hpp"
#include "xpu/queue.hpp"

namespace batchlin::xpu {

command_graph::~command_graph()
{
    // Detach a still-active recording so the queue does not keep a
    // dangling recorder pointer (mirrors khr::command_graph's RAII).
    if (active_ && queue_ != nullptr) {
        queue_->recorder_ = nullptr;
    }
}

void command_graph::begin_recording(queue& q)
{
    BATCHLIN_ENSURE_MSG(!active_, "this graph is already recording");
    BATCHLIN_ENSURE_MSG(q.recorder_ == nullptr,
                        "the queue is already being recorded by another "
                        "command_graph");
    queue_ = &q;
    active_ = true;
    q.recorder_ = this;
}

void command_graph::end_recording()
{
    BATCHLIN_ENSURE_MSG(active_, "no recording in progress");
    queue_->recorder_ = nullptr;
    active_ = false;
}

graph_exec command_graph::finalize()
{
    BATCHLIN_ENSURE_MSG(!active_,
                        "end_recording() must precede finalize()");
    BATCHLIN_ENSURE_MSG(queue_ != nullptr,
                        "finalize() requires a completed recording");
    BATCHLIN_ENSURE_MSG(!nodes_.empty(),
                        "cannot finalize an empty command graph");
    // The runtime's graph-build cost is paid once, here — not per replay.
    queue::charge_host_cost(queue_->policy().emulated_record_us);
    auto nodes = std::make_shared<const std::vector<graph_node>>(
        std::move(nodes_));
    nodes_.clear();
    queue_ = nullptr;
    ++records_;
    return graph_exec(std::move(nodes));
}

void graph_exec::replay(queue& q, submit_cost cost)
{
    BATCHLIN_ENSURE_MSG(nodes_ != nullptr,
                        "replay of a default-constructed graph_exec");
    BATCHLIN_ENSURE_MSG(!invalidated_,
                        "replay of an invalidated graph_exec; re-record "
                        "instead of replaying a poisoned graph");
    // A throwing replay still counts: the submission happened, exactly
    // like a failed eager launch advancing the launch counter.
    ++replays_;
    double first_us = 0.0;
    switch (cost) {
    case submit_cost::eager:
        first_us = q.policy().emulated_launch_us;
        break;
    case submit_cost::replay:
        first_us = q.policy().emulated_replay_us;
        break;
    case submit_cost::resident:
        first_us = 0.0;
        break;
    }
    // One submission is charged per replay regardless of node count —
    // that is the whole point of a finalized graph.
    bool first = true;
    for (const graph_node& node : *nodes_) {
        q.run_recorded(node, first ? first_us : 0.0);
        first = false;
    }
}

}  // namespace batchlin::xpu
