// Device descriptions for the analytic performance model.
//
// The four devices of the paper's evaluation (Table 5): NVIDIA A100 and
// H100 (CUDA programming model), and the Intel Data Center GPU Max 1550
// used as one stack (PVC-1S) or two stacks (PVC-2S, implicit scaling mode).
// Table 5 provides FP64 peak, HBM bandwidth and SLM capacity; core counts
// and cache sizes come from the vendor architecture documents; the
// bandwidth/efficiency knobs are calibration constants documented in
// EXPERIMENTS.md (this reproduction has no GPU hardware, so device time is
// modeled from the instrumented kernel counters).
#pragma once

#include <string>
#include <vector>

#include "util/math.hpp"
#include "xpu/policy.hpp"

namespace batchlin::perf {

/// Static description of one execution target.
struct device_spec {
    std::string name;
    xpu::prog_model model = xpu::prog_model::sycl;
    /// Streaming multiprocessors (NVIDIA) or Xe-cores (Intel), across all
    /// counted stacks.
    index_type num_cores = 0;
    index_type num_stacks = 1;
    /// Table 5 rows.
    double fp64_peak_tflops = 0.0;
    double hbm_bw_tbs = 0.0;
    size_type slm_per_core_bytes = 0;
    /// FP32 peak (2x FP64 on all four devices).
    double fp32_peak_tflops = 0.0;
    /// Per-core SLM (shared memory / L1) bandwidth.
    double slm_bw_core_gbs = 0.0;
    /// Last-level cache ("L3" in the paper's Intel Advisor terminology).
    double l2_bw_tbs = 0.0;
    size_type l2_size_bytes = 0;
    /// Fixed cost of one kernel launch.
    double kernel_launch_us = 0.0;
    /// Fixed cost of replaying a finalized command graph (SYCL-Graph /
    /// CUDA Graph): the driver skips argument marshalling and scheduling
    /// setup, so this sits well below `kernel_launch_us`.
    double graph_replay_us = 0.0;
    /// One-time cost of finalizing a recorded command graph.
    double graph_finalize_us = 0.0;
    /// Scheduler limits per core.
    index_type max_groups_per_core = 32;
    index_type max_threads_per_core = 1024;
    /// Fraction of peak the tuned batched kernels achieve on this device —
    /// the calibration constant of the model.
    double efficiency = 0.7;
    /// Multi-stack implicit-scaling efficiency (paper §4.2: 1.8-1.9x on two
    /// stacks rather than the ideal 2x).
    double stack_scaling_efficiency = 1.0;
    /// Fixed per-launch cost of the driver splitting a kernel across
    /// stacks; visible on small problems only (paper Fig. 5: the speedup
    /// of implicit scaling grows with the matrix size, 1.5x -> 2.0x).
    double implicit_scaling_overhead_us = 0.0;

    /// Execution policy matching this device's programming model.
    xpu::exec_policy make_policy() const;
};

/// Table 5 devices.
device_spec a100();
device_spec h100();
device_spec pvc_1s();
device_spec pvc_2s();

/// All four, in the paper's comparison order.
std::vector<device_spec> paper_devices();

/// Lookup by name ("A100", "H100", "PVC-1S", "PVC-2S"); throws on unknown.
device_spec device_by_name(const std::string& name);

/// Sustained streaming bandwidth (TB/s) the tuned batched kernels achieve
/// on this device: HBM peak scaled by the calibration efficiency and, on
/// multi-stack parts, the implicit-scaling efficiency (§4.2). This is the
/// single number the shard router's cost model divides transferred bytes
/// by, and it is what makes PVC-2S come out 1.8-1.9x PVC-1S rather than
/// the ideal 2x.
double sustained_bw_tbs(const device_spec& d);

}  // namespace batchlin::perf
