// Ablation: work-group vs sub-group reduction strategy (§3.2/§3.6).
//
// SYCL offers a work-group-level reduction primitive that stages lane
// values through SLM; for small systems the sub-group (shuffle) path
// avoids those SLM round-trips. CUDA only has the warp path. This bench
// sweeps both strategies over matrix sizes and reports the SLM traffic
// difference and the modeled runtime.
#include <cstdio>

#include "common.hpp"

using namespace bench;

namespace {

measured_solve measure_reduce(const perf::device_spec& device,
                              const solver::batch_matrix<double>& a,
                              const mat::batch_dense<double>& b,
                              xpu::reduce_path path)
{
    solver::solve_options opts =
        stencil_options(solver::solver_type::cg);
    opts.reduction = path;
    xpu::queue q(device.make_policy());
    measured_solve m;
    m.measured_items =
        std::visit([](const auto& mm) { return mm.num_batch_items(); }, a);
    m.rows = std::visit([](const auto& mm) { return mm.rows(); }, a);
    mat::batch_dense<double> x(m.measured_items, m.rows, 1);
    m.result = solver::solve(q, a, b, x, opts);
    m.mean_iterations = m.result.log.mean_iterations();
    const perf::solve_profile p = make_profile<double>(m.result, a, 1);
    m.constant_bytes_per_system = p.constant_footprint_per_system;
    return m;
}

}  // namespace

int main()
{
    const index_type target = 1 << 17;
    const perf::device_spec device = perf::pvc_1s();
    std::printf("Ablation: group vs sub-group reduction (paper §3.2), "
                "BatchCg, 3pt stencil, 2^17 matrices, %s\n\n",
                device.name.c_str());
    std::printf("%6s | %12s %14s | %12s %14s | %s\n", "rows", "group[ms]",
                "SLM GB", "subgrp[ms]", "SLM GB", "winner");
    rule(80);
    for (const index_type rows : {8, 16, 32, 64, 128, 256}) {
        const index_type items = measurement_batch(64);
        const solver::batch_matrix<double> a =
            work::stencil_3pt<double>(items, rows, 42);
        const auto b = work::random_rhs<double>(items, rows, 7);
        const measured_solve grp =
            measure_reduce(device, a, b, xpu::reduce_path::group);
        const measured_solve sub =
            measure_reduce(device, a, b, xpu::reduce_path::sub_group);
        const double factor = static_cast<double>(target) / items;
        const double g_ms = projected_ms(device, grp, target);
        const double s_ms = projected_ms(device, sub, target);
        std::printf("%6d | %12.3f %14.2f | %12.3f %14.2f | %s\n", rows,
                    g_ms, grp.result.stats.slm_bytes * factor * 1e-9, s_ms,
                    sub.result.stats.slm_bytes * factor * 1e-9,
                    s_ms <= g_ms ? "sub-group" : "group");
    }
    std::printf("\n(sub-group shuffles avoid the SLM round-trips of the "
                "group primitive — decisive for systems that fit one "
                "sub-group, §3.2)\n");
    return 0;
}
