file(REMOVE_RECURSE
  "CMakeFiles/batched_from_files.dir/batched_from_files.cpp.o"
  "CMakeFiles/batched_from_files.dir/batched_from_files.cpp.o.d"
  "batched_from_files"
  "batched_from_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batched_from_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
