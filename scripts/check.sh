#!/usr/bin/env bash
# Builds and tests the two verification configs:
#  1. the default Release build (tier-1: what CI and users run), and
#  2. a Debug + ASan/UBSan build (BATCHLIN_SANITIZE=ON), which also keeps
#     assertions alive so the debug-only workspace-binder name checks run.
# The sanitizer pass is what proves the pooled launch resources and the
# reused spill backing leak- and UB-free across repeated solves.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

JOBS=${1:-$(nproc)}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

echo "== config 1/2: Release (build/)"
cmake -B build -S . -G Ninja >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -j "$JOBS" --output-on-failure | tail -3

echo "== config 2/2: Debug + ASan/UBSan (build-sanitize/)"
cmake -B build-sanitize -S . -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug -DBATCHLIN_SANITIZE=ON >/dev/null
cmake --build build-sanitize -j "$JOBS"
ctest --test-dir build-sanitize -j "$JOBS" --output-on-failure | tail -3

echo "== both configs clean"
