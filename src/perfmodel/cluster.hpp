// Multi-GPU batch distribution (paper §4.2).
//
// "The batched solvers ... suggest that we can easily scale to multiple
// GPUs as distributing these batched matrices over the MPI ranks is
// trivial and no additional communication is necessary." This module
// models exactly that: the batch splits into near-equal contiguous chunks
// (one per device/rank), each device solves its chunk independently, and
// the node time is the slowest rank plus a fixed scatter/gather overhead.
// The default node is a Sunspot/Aurora compute node: six PVC GPUs.
#pragma once

#include "perfmodel/cost_model.hpp"
#include "perfmodel/device_spec.hpp"

namespace batchlin::perf {

/// A set of identical devices solving one batch cooperatively.
struct cluster_spec {
    device_spec device;
    index_type num_devices = 1;
    /// Per-solve cost of scattering the batch and gathering the solutions
    /// across ranks (no solver communication is needed, §4.2).
    double distribution_overhead_us = 50.0;
};

/// One Sunspot/Aurora node: six PVC GPUs (each modeled as PVC-2S).
cluster_spec aurora_node(index_type num_gpus = 6);

/// Result of a distributed estimate.
struct cluster_time {
    /// Items assigned to the busiest rank.
    index_type max_items_per_device = 0;
    /// Per-rank kernel time (the slowest rank; ranks are near-identical).
    double device_seconds = 0.0;
    double overhead_seconds = 0.0;
    double total_seconds = 0.0;
    /// Speedup vs a single device of the same type.
    double speedup = 0.0;
    /// Parallel efficiency = speedup / num_devices.
    double efficiency = 0.0;
};

/// Distributes the profiled solve over the cluster: the busiest rank gets
/// ceil(num_systems / num_devices) systems; counters scale accordingly.
cluster_time estimate_cluster_time(const cluster_spec& cluster,
                                   const solve_profile& whole_batch);

}  // namespace batchlin::perf
