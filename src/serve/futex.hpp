// Direct futex wait/wake for the serve completion slots.
//
// libstdc++'s std::atomic<T>::wait() front-loads a spin of sched_yield()
// calls before the futex syscall. On a host where clients and solver
// workers time-share cores, every yield is a voluntary context switch
// donated to an arbitrary runnable thread, and a blocking ticket wait
// turns into a dozen scheduler round-trips instead of one sleep/wake
// pair. These helpers go to the futex directly; any spinning policy is
// the caller's, written out where it can be reasoned about.
//
// Memory ordering is carried entirely by the atomic word the caller
// loads/stores around these calls — the futex is only a parking lot.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__linux__)
#include <climits>
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace batchlin::serve::detail {

/// Blocks until `word` is woken or its value is observed != `expected`.
/// May return spuriously; callers re-check the predicate in a loop.
inline void futex_wait(std::atomic<std::uint32_t>& word,
                       std::uint32_t expected)
{
#if defined(__linux__)
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
            FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
#else
    word.wait(expected, std::memory_order_acquire);
#endif
}

/// Wakes every thread blocked in futex_wait on `word`.
inline void futex_wake_all(std::atomic<std::uint32_t>& word)
{
#if defined(__linux__)
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
            FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
#else
    word.notify_all();
#endif
}

}  // namespace batchlin::serve::detail
