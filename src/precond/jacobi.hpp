// BatchJacobi: scalar Jacobi preconditioner, M = diag(A)^{-1}.
//
// This is the preconditioner the paper uses for all PeleLM inputs (§4.1).
// Generation extracts the inverse diagonal of each system into the
// preconditioner workspace (SLM when the planner finds room, §3.5);
// application is an element-wise multiply. Works with every matrix format.
//
// S is the storage type (mat::storage_precision): under fp32 storage the
// inverse diagonal is computed in T but *stored* as float, packed into the
// leading bytes of the T-typed workspace, and widened on every apply.
#pragma once

#include <vector>

#include "blas/device_blas.hpp"
#include "blas/matrix_view.hpp"
#include "matrix/batch_csr.hpp"
#include "precond/types.hpp"

namespace batchlin::precond {

template <typename T, typename S = T>
class jacobi {
public:
    static constexpr type kind = type::jacobi;

    /// For ELL and dense sources the diagonal is located in-kernel.
    jacobi() = default;

    /// For CSR sources the diagonal positions within the values array are
    /// precomputed once on the host (the pattern is shared by the batch).
    /// Throws when a diagonal entry is missing from the pattern.
    explicit jacobi(const mat::batch_csr<T>& a);

    static size_type workspace_elems(index_type rows, index_type /*nnz*/)
    {
        return packed_elems<T, S>(static_cast<size_type>(rows));
    }

    struct applier {
        xpu::dspan<const S> inv_diag;

        void apply(xpu::group& g, xpu::dspan<const T> r,
                   xpu::dspan<T> z) const
        {
            blas::elementwise_mult(g, inv_diag, r, z);
        }
    };

    applier generate(xpu::group& g, const blas::csr_view<T, S>& a,
                     xpu::dspan<T> work) const;
    applier generate(xpu::group& g, const blas::ell_view<T, S>& a,
                     xpu::dspan<T> work) const;
    applier generate(xpu::group& g, const blas::dense_view<T, S>& a,
                     xpu::dspan<T> work) const;

private:
    std::vector<index_type> diag_positions_;
};

}  // namespace batchlin::precond
