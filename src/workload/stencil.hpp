// Synthetic 3-point-stencil workload (paper §4.1/§4.2).
//
// Generates batches of symmetric positive definite tridiagonal systems
// ([-1, 2, -1] plus a per-item diagonal perturbation that keeps the items
// distinct and SPD). The matrix size and batch size scale freely, which is
// what the paper's scaling study (Fig. 4/5) needs.
#pragma once

#include <cstdint>

#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"

namespace batchlin::work {

/// Batch of SPD 3-point-stencil matrices (rows x rows, 3*rows - 2 stored
/// non-zeros; Table 4 quotes the interior-row count 3 x n_rows).
template <typename T>
mat::batch_csr<T> stencil_3pt(index_type num_items, index_type rows,
                              std::uint64_t seed = 42);

/// Banded SPD stencil batch of the given half-bandwidth (bandwidth 2 =
/// the penta-diagonal systems of the paper's related work [9]): diagonal
/// 2*bandwidth + shift, off-diagonals -1 within the band.
template <typename T>
mat::batch_csr<T> stencil_banded(index_type num_items, index_type rows,
                                 index_type bandwidth,
                                 std::uint64_t seed = 42);

/// Uniform random right-hand sides in [0.5, 1.5).
template <typename T>
mat::batch_dense<T> random_rhs(index_type num_items, index_type rows,
                               std::uint64_t seed = 7);

/// Right-hand sides with known solution x* = 1: b_i = A_i * 1.
template <typename T>
mat::batch_dense<T> rhs_for_unit_solution(const mat::batch_csr<T>& a);

}  // namespace batchlin::work
