// Tests for the BatchRichardson extension solver and the queue's launch
// profiling records.
#include <gtest/gtest.h>

#include <cmath>

#include "solver/dispatch.hpp"
#include "solver/residual.hpp"
#include "util/error.hpp"
#include "workload/chemistry.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using batchlin::index_type;
namespace mat = batchlin::mat;
namespace solver = batchlin::solver;
namespace precond = batchlin::precond;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;

TEST(Richardson, JacobiPreconditionedConvergesOnDominantSystems)
{
    const auto mech = work::mechanism_by_name("drm19");
    const auto a_csr = work::generate_mechanism_batch<double>(mech, 67);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::mechanism_rhs<double>(67, mech.rows, 9);
    mat::batch_dense<double> x(67, mech.rows, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::richardson;
    opts.preconditioner = precond::type::jacobi;
    opts.richardson_relaxation = 0.9;
    opts.criterion = stop::relative(1e-9, 500);
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), 67);
    EXPECT_EQ(result.stats.kernel_launches, 1);  // fused like the rest
    for (const double r : solver::relative_residual_norms(a, b, x)) {
        EXPECT_LE(r, 1e-7);
    }
}

TEST(Richardson, NeedsMoreIterationsThanKrylovSolvers)
{
    const auto mech = work::mechanism_by_name("gri12");
    const auto a_csr = work::generate_mechanism_batch<double>(mech, 73);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::mechanism_rhs<double>(73, mech.rows, 3);
    solver::solve_options opts;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-9, 500);
    xpu::queue q(xpu::make_sycl_policy());
    auto iters = [&](solver::solver_type kind) {
        mat::batch_dense<double> x(73, mech.rows, 1);
        solver::solve_options o = opts;
        o.solver = kind;
        const auto result = solver::solve(q, a, b, x, o);
        EXPECT_EQ(result.log.num_converged(), 73);
        return result.log.mean_iterations();
    };
    EXPECT_GT(iters(solver::solver_type::richardson),
              iters(solver::solver_type::bicgstab));
}

TEST(Richardson, ResidualHistoryDecaysGeometrically)
{
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(4, 32, 13);
    const auto b = work::random_rhs<double>(4, 32, 14);
    mat::batch_dense<double> x(4, 32, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::richardson;
    opts.preconditioner = precond::type::jacobi;
    opts.richardson_relaxation = 1.0;  // classic Jacobi iteration
    opts.criterion = stop::relative(1e-10, 400);
    opts.record_history = true;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), 4);
    // Stationary iteration: the contraction factor between consecutive
    // residuals is (asymptotically) constant and < 1.
    const index_type item = 0;
    const index_type n = result.log.iterations(item);
    ASSERT_GT(n, 6);
    for (index_type it = 2; it + 1 < n; ++it) {
        const double ratio = result.log.residual_at(item, it + 1) /
                             result.log.residual_at(item, it);
        EXPECT_LT(ratio, 1.0) << "iteration " << it;
    }
}

TEST(Richardson, WorksWithEveryCompatibleFormatAndPrecond)
{
    const auto csr = work::stencil_3pt<double>(6, 24, 5);
    const auto b = work::random_rhs<double>(6, 24, 6);
    xpu::queue q(xpu::make_sycl_policy());
    for (const auto pc :
         {precond::type::none, precond::type::jacobi, precond::type::ilu,
          precond::type::isai, precond::type::block_jacobi}) {
        mat::batch_dense<double> x(6, 24, 1);
        solver::solve_options opts;
        opts.solver = solver::solver_type::richardson;
        opts.preconditioner = pc;
        opts.richardson_relaxation =
            pc == precond::type::none ? 0.2 : 0.9;
        opts.criterion = stop::relative(1e-8, 800);
        const solver::batch_matrix<double> a = csr;
        const auto result = solver::solve(q, a, b, x, opts);
        EXPECT_EQ(result.log.num_converged(), 6)
            << precond::to_string(pc);
    }
}

TEST(Profiling, DisabledByDefault)
{
    xpu::queue q(xpu::make_sycl_policy());
    q.run_batch(4, 16, 16, [](xpu::group&) {});
    EXPECT_FALSE(q.profiling_enabled());
    EXPECT_TRUE(q.launch_history().empty());
}

TEST(Profiling, RecordsEveryLaunch)
{
    xpu::queue q(xpu::make_sycl_policy());
    q.enable_profiling();
    q.run_batch(4, 16, 16, [](xpu::group& g) { g.stats().flops += 1; });
    q.run_batch(8, 32, 16, [](xpu::group& g) { g.stats().flops += 2; });
    // launch_history() returns a snapshot copy (the queue stores a ring
    // buffer internally), so take it once.
    const auto history = q.launch_history();
    ASSERT_EQ(history.size(), 2u);
    const auto& first = history[0];
    const auto& second = history[1];
    EXPECT_EQ(first.num_groups, 4);
    EXPECT_EQ(first.work_group_size, 16);
    EXPECT_DOUBLE_EQ(first.stats.flops, 4.0);
    EXPECT_EQ(second.num_groups, 8);
    EXPECT_EQ(second.work_group_size, 32);
    EXPECT_DOUBLE_EQ(second.stats.flops, 16.0);
    EXPECT_GE(first.wall_seconds, 0.0);
    q.clear_launch_history();
    EXPECT_TRUE(q.launch_history().empty());
}

TEST(Profiling, SolveThroughProfiledQueueShowsOneFusedLaunch)
{
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(8, 20, 2);
    const auto b = work::random_rhs<double>(8, 20, 3);
    mat::batch_dense<double> x(8, 20, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = precond::type::jacobi;
    xpu::queue q(xpu::make_sycl_policy());
    q.enable_profiling();
    solver::solve(q, a, b, x, opts);
    ASSERT_EQ(q.launch_history().size(), 1u);  // §3.4: single fused kernel
    EXPECT_EQ(q.launch_history()[0].num_groups, 8);
}
