# Empty dependencies file for bench_fig4b_scaling_batch.
# This may be replaced when dependencies are built.
