file(REMOVE_RECURSE
  "../bench/bench_ext_multi_gpu"
  "../bench/bench_ext_multi_gpu.pdb"
  "CMakeFiles/bench_ext_multi_gpu.dir/bench_ext_multi_gpu.cpp.o"
  "CMakeFiles/bench_ext_multi_gpu.dir/bench_ext_multi_gpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multi_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
