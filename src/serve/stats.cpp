// JSON dump of a service-stats snapshot. Hand-rolled emission (the repo
// carries no JSON dependency): every value is an integer, a double, or a
// device-name string the registry produced from a fixed alphabet, so no
// escaping is needed beyond quoting.
#include "serve/stats.hpp"

#include <cinttypes>
#include <cstdio>

namespace batchlin::serve {

namespace {

void emit_u64(std::string& out, const char* key, std::uint64_t value,
              bool comma = true)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64 "%s", key, value,
                  comma ? ", " : "");
    out += buf;
}

void emit_i64(std::string& out, const char* key, std::int64_t value,
              bool comma = true)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "\"%s\": %" PRId64 "%s", key, value,
                  comma ? ", " : "");
    out += buf;
}

void emit_double(std::string& out, const char* key, double value,
                 bool comma = true)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "\"%s\": %.9g%s", key, value,
                  comma ? ", " : "");
    out += buf;
}

void emit_bool(std::string& out, const char* key, bool value,
               bool comma = true)
{
    out += '"';
    out += key;
    out += value ? "\": true" : "\": false";
    if (comma) {
        out += ", ";
    }
}

void emit_string(std::string& out, const char* key, const std::string& value,
                 bool comma = true)
{
    out += '"';
    out += key;
    out += "\": \"";
    out += value;
    out += '"';
    if (comma) {
        out += ", ";
    }
}

}  // namespace

std::string service_stats::to_json() const
{
    std::string out;
    out.reserve(2048 + shards.size() * 512);
    out += "{";
    emit_u64(out, "submitted_requests", submitted_requests);
    emit_u64(out, "submitted_systems", submitted_systems);
    emit_u64(out, "completed_requests", completed_requests);
    emit_u64(out, "completed_systems", completed_systems);
    emit_u64(out, "rejected_requests", rejected_requests);
    emit_u64(out, "expired_requests", expired_requests);
    emit_u64(out, "failed_requests", failed_requests);
    emit_u64(out, "batches_launched", batches_launched);
    emit_u64(out, "launch_faults", launch_faults);
    emit_u64(out, "launch_retries", launch_retries);
    emit_u64(out, "degraded_launches", degraded_launches);
    emit_u64(out, "recovered_requests", recovered_requests);
    emit_u64(out, "breaker_trips", breaker_trips);
    emit_bool(out, "breaker_active", breaker_active);
    emit_u64(out, "launches_recorded", launches_recorded);
    emit_u64(out, "replays", replays);
    emit_u64(out, "rebind_only", rebind_only);
    emit_u64(out, "refined_batches", refined_batches);
    emit_u64(out, "refine_sweeps", refine_sweeps);
    emit_u64(out, "refine_fallbacks", refine_fallbacks);
    emit_u64(out, "evictions", evictions);
    emit_u64(out, "watchdog_evictions", watchdog_evictions);
    emit_u64(out, "migrations", migrations);
    emit_u64(out, "migrated_systems", migrated_systems);
    emit_u64(out, "probes", probes);
    emit_u64(out, "probe_successes", probe_successes);
    emit_u64(out, "shed_requests", shed_requests);
    emit_i64(out, "brownout_level", brownout_level);
    emit_i64(out, "brownout_max", brownout_max);
    emit_u64(out, "brownout_batches", brownout_batches);
    emit_u64(out, "queue_depth_requests", queue_depth_requests);
    emit_u64(out, "queue_depth_systems", queue_depth_systems);
    emit_u64(out, "steals", steals);
    emit_double(out, "p50_latency_seconds", p50_latency_seconds);
    emit_double(out, "p99_latency_seconds", p99_latency_seconds);
    emit_double(out, "solves_per_sec", solves_per_sec);
    emit_double(out, "mean_batch_size", mean_batch_size);
    emit_double(out, "uptime_seconds", uptime_seconds);
    out += "\"shards\": [";
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const shard_stats& s = shards[i];
        if (i != 0) {
            out += ", ";
        }
        out += "{";
        emit_u64(out, "shard", static_cast<std::uint64_t>(s.shard));
        emit_string(out, "device", s.device);
        emit_string(out, "state", s.state);
        emit_u64(out, "routed_requests", s.routed_requests);
        emit_u64(out, "routed_systems", s.routed_systems);
        emit_u64(out, "completed_systems", s.completed_systems);
        emit_u64(out, "batches_launched", s.batches_launched);
        emit_u64(out, "steals", s.steals);
        emit_u64(out, "stolen_systems", s.stolen_systems);
        emit_u64(out, "launch_faults", s.launch_faults);
        emit_u64(out, "breaker_trips", s.breaker_trips);
        emit_bool(out, "breaker_active", s.breaker_active);
        emit_u64(out, "evictions", s.evictions);
        emit_u64(out, "probes", s.probes);
        emit_u64(out, "probe_successes", s.probe_successes);
        emit_u64(out, "migrated_requests", s.migrated_requests);
        emit_u64(out, "migrated_systems", s.migrated_systems);
        emit_u64(out, "heartbeat", s.heartbeat);
        emit_u64(out, "queue_depth_systems", s.queue_depth_systems);
        emit_i64(out, "backlog_ns", s.backlog_ns);
        emit_double(out, "modeled_busy_seconds", s.modeled_busy_seconds);
        emit_double(out, "solves_per_sec", s.solves_per_sec, false);
        out += "}";
    }
    out += "]}";
    return out;
}

}  // namespace batchlin::serve
