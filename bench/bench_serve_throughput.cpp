// Serve-throughput benchmark: solves/sec of serve::solve_service under a
// closed-loop traffic generator.
//
// The serving-layer claim mirrors the paper's device-side one (§3.4): many
// small systems fused into one launch amortize per-launch overhead. This
// bench measures it end to end through the service: N client threads each
// submit one single-system request, wait for the reply, and immediately
// submit the next (closed loop), sweeping the offered load (client count)
// against four service configurations — `batch1` (max_batch 1, no window:
// every request is its own launch), `coalesced` (dynamic batching with a
// real window), `graph_replay` (batching plus cached graph recordings:
// each fused launch is a rebind + replay at the device's graph-replay
// cost instead of a full eager submission), and `persistent` (resident
// worker loops fed by a lock-free ring, replaying graphs at zero
// submission cost). Headline numbers are the coalesced/batch1 speedup and
// the graph modes' speedup over coalesced at the highest offered load.
//
// Both modes run on an emulated device: the queue charges every launch the
// fixed submission cost of the modeled PVC stack (device_spec
// kernel_launch_us, 8 us) as wall time, because the simulator's native
// launch path costs well under a microsecond — far below any real SYCL
// runtime — and would under-state exactly the overhead that dynamic
// batching exists to amortize. Pass --launch-latency-us 0 for the
// pure-host numbers.
//
// Usage:
//   bench_serve_throughput [--json FILE] [--min-time SECONDS]
//                          [--launch-latency-us US]
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "perfmodel/device_spec.hpp"
#include "serve/service.hpp"
#include "util/timer.hpp"
#include "workload/stencil.hpp"

using namespace bench;
namespace serve = batchlin::serve;

namespace {

constexpr index_type kRows = 8;
constexpr int kClients[] = {4, 16, 64};
/// Outstanding requests per client (closed-loop window). A window above 1
/// keeps the admission queue non-empty across reply round-trips, which is
/// what lets the batcher see fusible work on a single-core host.
constexpr int kWindow = 4;

struct mode_spec {
    const char* name;
    index_type max_batch;
    std::chrono::microseconds max_wait;
    xpu::launch_mode launch{xpu::launch_mode::direct};
};

// batch1 disables coalescing entirely: a service that launches one kernel
// per request, the single-shot baseline a caller without a batcher gets.
// coalesced keeps max_batch below the top offered load so that, at high
// load, a full batch is already queued when the leader scans and the
// launch happens without waiting out the window — the standard sizing
// rule for closed-loop dynamic batching.
constexpr mode_spec kModes[] = {
    {"batch1", 1, std::chrono::microseconds{0}},
    {"coalesced", 32, std::chrono::microseconds{300}},
    {"graph_replay", 32, std::chrono::microseconds{300},
     xpu::launch_mode::graph_replay},
    {"persistent", 32, std::chrono::microseconds{300},
     xpu::launch_mode::persistent},
};

struct cell_result {
    double solves_per_sec = 0.0;
    double mean_batch = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    long requests = 0;
    unsigned long long recorded = 0;
    unsigned long long replays = 0;
    unsigned long long rebind_only = 0;
};

/// One cell of the shard-count sweep: the persistent-mode service spread
/// over N explicit PVC-1S shards (each charging the modeled 8 us launch
/// cost), under the same closed-loop traffic.
struct shard_cell_result {
    double wall_sps = 0.0;
    /// Aggregate modeled throughput: completed systems over the busiest
    /// shard's modeled device-busy time. On this single-core host every
    /// shard's work serializes onto one CPU, so wall time cannot show
    /// device scaling; the cost model applied to the launches that
    /// actually ran can (the same convention the launch-mode benches use
    /// for device-side costs).
    double modeled_sps = 0.0;
    double mean_batch = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    long requests = 0;
    unsigned long long steals = 0;
    double max_modeled_busy_seconds = 0.0;
    unsigned long long completed_systems = 0;
};

solver::solve_options bench_opts()
{
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-6, 100);
    return opts;
}

/// Drives the closed-loop traffic against `service`: warms up 100 ms,
/// then counts completions over `min_time` seconds of wall clock.
void run_traffic(serve::solve_service& service, int clients,
                 double min_time, long& measured, double& elapsed)
{
    const solver::solve_options opts = bench_opts();
    std::atomic<bool> running{true};
    std::atomic<long> completed{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
            // Every client re-submits the same system; all clients share
            // one sparsity pattern and option set, so the coalesced mode
            // can fuse across clients.
            const mat::batch_csr<double> a = work::stencil_3pt<double>(
                1, kRows, 11 + static_cast<std::uint64_t>(c));
            const auto b = work::random_rhs<double>(
                1, kRows, 23 + static_cast<std::uint64_t>(c));
            // Pre-build the window's request payloads once; each reply
            // hands the storage back, so the steady-state loop recycles
            // it instead of re-copying matrices on every submit.
            std::vector<serve::solve_request<double>> pending;
            pending.reserve(kWindow);
            for (int w = 0; w < kWindow; ++w) {
                serve::solve_request<double> req;
                req.a = a;
                req.b = b;
                req.x = mat::batch_dense<double>(1, kRows, 1);
                req.opts = opts;
                pending.push_back(std::move(req));
            }
            std::vector<serve::solve_service::ticket<double>> window;
            window.reserve(kWindow);
            while (running.load(std::memory_order_relaxed)) {
                for (auto& req : pending) {
                    window.push_back(service.submit(std::move(req)));
                }
                pending.clear();
                for (auto& ticket : window) {
                    serve::solve_reply<double> reply = ticket.get();
                    if (reply.status == serve::request_status::ok) {
                        completed.fetch_add(1, std::memory_order_relaxed);
                    }
                    serve::solve_request<double> req;
                    req.a = std::move(reply.a);
                    req.b = std::move(reply.b);
                    req.x = std::move(reply.x);
                    req.x.fill(0.0);
                    req.opts = opts;
                    req.log = std::move(reply.log);
                    pending.push_back(std::move(req));
                }
                window.clear();
            }
        });
    }

    // Warm-up, then measure over a fresh counter interval.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const long warm = completed.load();
    wall_timer timer;
    std::this_thread::sleep_for(std::chrono::duration<double>(min_time));
    measured = completed.load() - warm;
    elapsed = timer.seconds();
    running.store(false);
    for (std::thread& t : pool) {
        t.join();
    }
}

/// Closed-loop measurement of one (mode, clients) cell: each client owns
/// one request's storage and re-submits as soon as its reply lands.
cell_result run_cell(const mode_spec& mode, int clients, double min_time,
                     double launch_latency_us)
{
    serve::service_config cfg;
    cfg.workers = 2;
    cfg.max_batch = mode.max_batch;
    cfg.max_wait = mode.max_wait;
    cfg.max_queue_systems = 4096;
    xpu::exec_policy policy = xpu::make_sycl_policy();
    policy.emulated_launch_us = launch_latency_us;
    // Graph costs scale with the same device model: replaying a finalized
    // graph on the PVC costs graph_replay_us instead of the eager launch,
    // and the one-time finalize costs graph_finalize_us. With launch
    // emulation off, graph emulation is off too.
    if (launch_latency_us > 0.0) {
        const perf::device_spec pvc = perf::pvc_1s();
        policy.emulated_replay_us = pvc.graph_replay_us;
        policy.emulated_record_us = pvc.graph_finalize_us;
    }
    policy.launch_mode = mode.launch;
    serve::solve_service service(policy, cfg);

    long measured = 0;
    double elapsed = 1.0;
    run_traffic(service, clients, min_time, measured, elapsed);

    const serve::service_stats s = service.stats();
    cell_result out;
    out.solves_per_sec = static_cast<double>(measured) / elapsed;
    out.mean_batch = s.mean_batch_size;
    out.p50_ms = s.p50_latency_seconds * 1e3;
    out.p99_ms = s.p99_latency_seconds * 1e3;
    out.requests = measured;
    out.recorded = s.launches_recorded;
    out.replays = s.replays;
    out.rebind_only = s.rebind_only;
    return out;
}

/// One shard-sweep cell: persistent mode over `shards` explicit PVC-1S
/// devices, one worker per shard so the worker count scales with the
/// fleet exactly as the paper's one-rank-per-device setup does.
shard_cell_result run_shard_cell(int shards, int clients, double min_time)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_batch = 32;
    cfg.max_wait = std::chrono::microseconds{300};
    cfg.max_queue_systems = 4096;
    cfg.shard_devices.assign(static_cast<std::size_t>(shards), "pvc1s");
    xpu::exec_policy policy = xpu::make_sycl_policy();
    policy.launch_mode = xpu::launch_mode::persistent;
    serve::solve_service service(policy, cfg);

    long measured = 0;
    double elapsed = 1.0;
    run_traffic(service, clients, min_time, measured, elapsed);
    service.drain();

    const serve::service_stats s = service.stats();
    shard_cell_result out;
    out.wall_sps = static_cast<double>(measured) / elapsed;
    out.mean_batch = s.mean_batch_size;
    out.p50_ms = s.p50_latency_seconds * 1e3;
    out.p99_ms = s.p99_latency_seconds * 1e3;
    out.requests = measured;
    out.steals = s.steals;
    out.completed_systems = s.completed_systems;
    for (const serve::shard_stats& ss : s.shards) {
        out.max_modeled_busy_seconds =
            std::max(out.max_modeled_busy_seconds, ss.modeled_busy_seconds);
    }
    if (out.max_modeled_busy_seconds > 0.0) {
        out.modeled_sps = static_cast<double>(s.completed_systems) /
                          out.max_modeled_busy_seconds;
    }
    return out;
}

/// One open-loop overload cell: a paced generator offering `rate_sps`
/// sheddable (priority 0) requests per second against a service with the
/// watermark shed and the brownout ladder on. Unlike the closed-loop
/// cells, the generator does not wait for replies, so offering past the
/// service's capacity is possible — the degradation machinery, not
/// client backpressure, must keep accepted-request latency bounded.
struct overload_result {
    double offered_sps = 0.0;
    double accepted_sps = 0.0;
    double shed_fraction = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    unsigned long long completed = 0;
    unsigned long long shed = 0;
    unsigned long long expired = 0;
    unsigned long long brownout_batches = 0;
    long long brownout_max = 0;
};

overload_result run_overload_cell(double rate_sps, double min_time,
                                  double launch_latency_us)
{
    serve::service_config cfg;
    cfg.workers = 2;
    cfg.max_batch = 32;
    cfg.max_wait = std::chrono::microseconds{300};
    cfg.max_queue_systems = 256;
    cfg.on_full = serve::overflow_policy::block;
    // Shed priority-0 work once ~24 systems are queued: accepted requests
    // then wait at most ~a batch of backlog, which is what keeps their
    // p99 flat as the offered load doubles past capacity.
    cfg.shed_watermark = 24.0 / 256.0;
    cfg.brownout = true;
    // Enter brownout level 1 (batching window cut to a quarter) as soon
    // as the queue reaches the shed watermark: under overload the window
    // is pure added latency — a full batch is already waiting.
    cfg.brownout_low = 24.0 / 256.0;
    xpu::exec_policy policy = xpu::make_sycl_policy();
    policy.emulated_launch_us = launch_latency_us;
    serve::solve_service service(policy, cfg);

    const mat::batch_csr<double> proto_a =
        work::stencil_3pt<double>(1, kRows, 77);
    const auto proto_b = work::random_rhs<double>(1, kRows, 78);
    const solver::solve_options opts = bench_opts();

    // Collector: resolves tickets as they land so the in-flight set (and
    // its request storage) stays bounded while the generator runs open
    // loop.
    std::deque<serve::solve_service::ticket<double>> inflight;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::atomic<unsigned long long> ok{0};
    std::atomic<unsigned long long> expired{0};
    std::atomic<unsigned long long> refused{0};
    std::thread collector([&] {
        std::unique_lock<std::mutex> lk(mu);
        for (;;) {
            cv.wait(lk, [&] { return !inflight.empty() || done; });
            if (inflight.empty() && done) {
                return;
            }
            auto ticket = std::move(inflight.front());
            inflight.pop_front();
            lk.unlock();
            const auto reply = ticket.get();
            (reply.status == serve::request_status::ok
                 ? ok
                 : reply.status == serve::request_status::expired
                       ? expired
                       : refused)
                .fetch_add(1, std::memory_order_relaxed);
            lk.lock();
        }
    });

    // Paced open-loop generator: every ~100 us, top the submission count
    // up to rate * elapsed — ticks fine enough that a burst stays under
    // the shed watermark at the offered rates this host can generate.
    // Requests are all priority 0 with a 3 ms deadline: the watermark is
    // the first line of defense, the deadline catches any straggler a
    // scheduling hiccup parks past it (it expires instead of stretching
    // the accepted-latency tail), and the hard bound (where
    // on_full=block would close the loop again) is never reached.
    wall_timer timer;
    long submitted = 0;
    const long cap = 200000;  // bounds memory and runtime on slow hosts
    while (timer.seconds() < min_time && submitted < cap) {
        const long want = std::min(
            cap, static_cast<long>(rate_sps * timer.seconds()));
        for (; submitted < want; ++submitted) {
            serve::solve_request<double> req;
            req.a = proto_a;
            req.b = proto_b;
            req.x = mat::batch_dense<double>(1, kRows, 1);
            req.opts = opts;
            req.priority = 0;
            req.deadline = std::chrono::milliseconds(3);
            auto ticket = service.submit(std::move(req));
            {
                std::lock_guard<std::mutex> lk(mu);
                inflight.push_back(std::move(ticket));
            }
            cv.notify_one();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const double elapsed = timer.seconds();
    {
        std::lock_guard<std::mutex> lk(mu);
        done = true;
    }
    cv.notify_all();
    collector.join();
    service.drain();

    const serve::service_stats s = service.stats();
    overload_result out;
    out.offered_sps = static_cast<double>(submitted) / elapsed;
    out.accepted_sps = static_cast<double>(ok.load()) / elapsed;
    out.completed = ok.load();
    out.expired = expired.load();
    out.shed = s.shed_requests;
    out.shed_fraction =
        submitted > 0 ? static_cast<double>(s.shed_requests) /
                            static_cast<double>(submitted)
                      : 0.0;
    // p50/p99 cover accepted (completed) requests only: a shed resolves
    // without ever entering the latency accounting.
    out.p50_ms = s.p50_latency_seconds * 1e3;
    out.p99_ms = s.p99_latency_seconds * 1e3;
    out.brownout_batches = s.brownout_batches;
    out.brownout_max = s.brownout_max;
    return out;
}

/// Solves one fixed request mix on an N-shard service and returns every
/// solution value in submission order — the acceptance probe that shard
/// placement and stealing never perturb results.
std::vector<double> solve_mix_on_shards(int shards)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_batch = 16;
    cfg.shard_devices.assign(static_cast<std::size_t>(shards), "pvc1s");
    xpu::exec_policy policy = xpu::make_sycl_policy();
    policy.launch_mode = xpu::launch_mode::persistent;
    serve::solve_service service(policy, cfg);

    const solver::solve_options opts = bench_opts();
    std::vector<serve::solve_service::ticket<double>> tickets;
    for (int wave = 0; wave < 4; ++wave) {
        for (const index_type rows : {8, 16, 24, 32}) {
            serve::solve_request<double> req;
            req.a = work::stencil_3pt<double>(
                2, rows, 31 + static_cast<std::uint64_t>(rows));
            req.b = work::random_rhs<double>(
                2, rows, 63 + static_cast<std::uint64_t>(rows));
            req.x = mat::batch_dense<double>(2, rows, 1);
            req.opts = opts;
            tickets.push_back(service.submit(std::move(req)));
        }
    }
    std::vector<double> values;
    for (auto& ticket : tickets) {
        serve::solve_reply<double> reply = ticket.get();
        for (index_type i = 0; i < reply.x.num_batch_items(); ++i) {
            const double* v = reply.x.item_values(i);
            values.insert(values.end(), v, v + reply.x.rows());
        }
    }
    return values;
}

}  // namespace

int main(int argc, char** argv)
{
    const char* json_path = nullptr;
    double min_time = 1.0;
    // The modeled submission cost of one PVC stack (device_spec
    // kernel_launch_us) is the emulated per-launch wall cost by default.
    double launch_latency_us = perf::pvc_1s().kernel_launch_us;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
            min_time = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--launch-latency-us") == 0 &&
                   i + 1 < argc) {
            launch_latency_us = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json FILE] [--min-time SECONDS] "
                         "[--launch-latency-us US]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("Serve throughput: closed-loop clients, 1 system of "
                "%d rows per request,\nCG + scalar Jacobi rtol 1e-6, "
                "2 workers, emulated launch cost %.1f us;\n"
                "batch1 vs coalesced vs graph_replay vs persistent "
                "(32 / 300 us)\n\n",
                kRows, launch_latency_us);
    std::printf("%10s | %8s | %12s | %10s | %9s | %9s\n", "mode", "clients",
                "solves/sec", "mean batch", "p50 ms", "p99 ms");
    rule(72);

    cell_result results[std::size(kModes)][std::size(kClients)];
    for (std::size_t m = 0; m < std::size(kModes); ++m) {
        for (std::size_t c = 0; c < std::size(kClients); ++c) {
            results[m][c] =
                run_cell(kModes[m], kClients[c], min_time, launch_latency_us);
            const cell_result& r = results[m][c];
            std::printf("%10s | %8d | %12.1f | %10.1f | %9.3f | %9.3f\n",
                        kModes[m].name, kClients[c], r.solves_per_sec,
                        r.mean_batch, r.p50_ms, r.p99_ms);
        }
    }

    // Shard-count sweep: the same persistent-mode stack spread over 1, 2,
    // and 4 explicit PVC-1S shards (§4.2's one-stack-to-many scaling shape
    // through the serving path).
    constexpr int kShardCounts[] = {1, 2, 4};
    constexpr int kShardClients[] = {16, 64};
    std::printf("\nShard sweep: persistent mode, 1 worker/shard, explicit "
                "PVC-1S devices\n");
    std::printf("%8s | %8s | %13s | %15s | %9s | %7s\n", "shards", "clients",
                "wall sps", "modeled agg sps", "p99 ms", "steals");
    rule(76);
    shard_cell_result shard_results[std::size(kShardCounts)]
                                   [std::size(kShardClients)];
    for (std::size_t si = 0; si < std::size(kShardCounts); ++si) {
        for (std::size_t c = 0; c < std::size(kShardClients); ++c) {
            shard_results[si][c] = run_shard_cell(
                kShardCounts[si], kShardClients[c], min_time);
            const shard_cell_result& r = shard_results[si][c];
            std::printf("%8d | %8d | %13.1f | %15.1f | %9.3f | %7llu\n",
                        kShardCounts[si], kShardClients[c], r.wall_sps,
                        r.modeled_sps, r.p99_ms, r.steals);
        }
    }
    const std::size_t stop_c = std::size(kShardClients) - 1;
    const auto modeled_scaling = [&](std::size_t si) {
        return shard_results[0][stop_c].modeled_sps > 0.0
                   ? shard_results[si][stop_c].modeled_sps /
                         shard_results[0][stop_c].modeled_sps
                   : 0.0;
    };
    const double scaling_2 = modeled_scaling(1);
    const double scaling_4 = modeled_scaling(2);
    const bool shard_bits_identical =
        solve_mix_on_shards(1) == solve_mix_on_shards(2) &&
        solve_mix_on_shards(1) == solve_mix_on_shards(4);
    rule(76);
    std::printf("modeled aggregate scaling at %d clients: "
                "1->2 shards %.2fx, 1->4 shards %.2fx\n",
                kShardClients[stop_c], scaling_2, scaling_4);
    std::printf("p99 at %d clients: 1 shard %.3f ms, 2 shards %.3f ms\n",
                kShardClients[stop_c], shard_results[0][stop_c].p99_ms,
                shard_results[1][stop_c].p99_ms);
    std::printf("bit-identical results across 1/2/4 shards: %s\n",
                shard_bits_identical ? "yes" : "NO");

    // Overload sweep. Saturation is calibrated on the open-loop config
    // itself: a probe cell offers far more than the service can take and
    // the accepted rate under that storm is the capacity C of *this*
    // path (open-loop generator + shed watermark + collector sharing the
    // host with the workers — the closed-loop cells above measure a
    // different, deeper-queued regime). Then offer 0.5x and 2x of C with
    // the shed watermark and brownout ladder on. The robustness
    // acceptance bar: accepted-request p99 at 2x saturation within 1.5x
    // of the unsaturated p99 — shedding, not luck, keeps latency flat.
    const std::size_t top = std::size(kClients) - 1;
    // Calibration ladder: double the offered rate until the service
    // visibly sheds (or stops keeping up). An all-out storm would
    // understate capacity — on a small host the generator itself starves
    // the workers — so approach saturation from below instead.
    std::printf("\nOverload sweep: open-loop priority-0 traffic, shed "
                "watermark 24/256 systems, brownout on, deadline 3 ms\n");
    double capacity = 0.0;
    {
        const double probe_time = std::min(min_time, 0.5);
        double rate = results[1][top].solves_per_sec / 8.0;
        for (int step = 0; step < 8; ++step) {
            const overload_result probe =
                run_overload_cell(rate, probe_time, launch_latency_us);
            capacity = probe.accepted_sps;
            std::printf("  probe: offered %.0f/s -> accepted %.0f/s, "
                        "shed %.1f%%\n",
                        probe.offered_sps, probe.accepted_sps,
                        probe.shed_fraction * 100.0);
            if (probe.shed_fraction > 0.05 ||
                probe.accepted_sps < 0.95 * probe.offered_sps) {
                break;
            }
            rate *= 2.0;
        }
    }
    std::printf("saturation: sustained %.0f accepted solves/sec\n",
                capacity);
    std::printf("%12s | %12s | %12s | %9s | %9s | %9s\n", "offered/sec",
                "accepted/sec", "shed frac", "p50 ms", "p99 ms",
                "brownouts");
    rule(76);
    const double kOverloadFactors[] = {0.5, 2.0};
    overload_result overload[std::size(kOverloadFactors)];
    for (std::size_t i = 0; i < std::size(kOverloadFactors); ++i) {
        overload[i] = run_overload_cell(capacity * kOverloadFactors[i],
                                        min_time, launch_latency_us);
        const overload_result& r = overload[i];
        std::printf("%12.1f | %12.1f | %12.3f | %9.3f | %9.3f | %9llu\n",
                    r.offered_sps, r.accepted_sps, r.shed_fraction,
                    r.p50_ms, r.p99_ms, r.brownout_batches);
    }
    const double overload_p99_ratio =
        overload[0].p99_ms > 0.0 ? overload[1].p99_ms / overload[0].p99_ms
                                 : 0.0;
    rule(76);
    std::printf("accepted p99 at 2.0x vs 0.5x capacity: %.2fx "
                "(%s 1.5x bar), shed %.0f%% at 2.0x\n",
                overload_p99_ratio,
                overload_p99_ratio <= 1.5 ? "within" : "ABOVE",
                overload[1].shed_fraction * 100.0);

    const auto ratio_at_top = [&](std::size_t num, std::size_t den) {
        return results[den][top].solves_per_sec > 0.0
                   ? results[num][top].solves_per_sec /
                         results[den][top].solves_per_sec
                   : 0.0;
    };
    const double speedup = ratio_at_top(1, 0);
    const double graph_speedup = ratio_at_top(2, 1);
    const double persistent_speedup = ratio_at_top(3, 1);
    rule(72);
    std::printf("coalesced vs batch1 at %d clients: %.2fx solves/sec\n",
                kClients[top], speedup);
    std::printf("graph_replay vs coalesced at %d clients: %.2fx solves/sec\n",
                kClients[top], graph_speedup);
    std::printf("persistent vs coalesced at %d clients: %.2fx solves/sec\n",
                kClients[top], persistent_speedup);

    if (json_path != nullptr) {
        std::FILE* f = std::fopen(json_path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", json_path);
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"serve_throughput\",\n");
        std::fprintf(f,
                     "  \"rows\": %d, \"workers\": 2, "
                     "\"min_time_seconds\": %.2f,\n",
                     kRows, min_time);
        std::fprintf(f, "  \"emulated_launch_us\": %.2f,\n",
                     launch_latency_us);
        std::fprintf(f, "  \"cells\": [\n");
        for (std::size_t m = 0; m < std::size(kModes); ++m) {
            for (std::size_t c = 0; c < std::size(kClients); ++c) {
                const cell_result& r = results[m][c];
                std::fprintf(
                    f,
                    "    {\"mode\": \"%s\", \"launch_mode\": \"%s\", "
                    "\"max_batch\": %d, "
                    "\"max_wait_us\": %ld, \"clients\": %d, "
                    "\"solves_per_sec\": %.1f, \"mean_batch_size\": %.2f, "
                    "\"p50_latency_ms\": %.3f, \"p99_latency_ms\": %.3f, "
                    "\"requests\": %ld, \"launches_recorded\": %llu, "
                    "\"replays\": %llu, \"rebind_only\": %llu}%s\n",
                    kModes[m].name,
                    xpu::to_string(kModes[m].launch).c_str(),
                    kModes[m].max_batch,
                    static_cast<long>(kModes[m].max_wait.count()),
                    kClients[c], r.solves_per_sec, r.mean_batch, r.p50_ms,
                    r.p99_ms, r.requests, r.recorded, r.replays,
                    r.rebind_only,
                    m + 1 == std::size(kModes) && c + 1 == std::size(kClients)
                        ? ""
                        : ",");
            }
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"shard_sweep\": [\n");
        for (std::size_t si = 0; si < std::size(kShardCounts); ++si) {
            for (std::size_t c = 0; c < std::size(kShardClients); ++c) {
                const shard_cell_result& r = shard_results[si][c];
                std::fprintf(
                    f,
                    "    {\"shards\": %d, \"clients\": %d, "
                    "\"wall_solves_per_sec\": %.1f, "
                    "\"modeled_aggregate_solves_per_sec\": %.1f, "
                    "\"max_modeled_busy_seconds\": %.4f, "
                    "\"completed_systems\": %llu, "
                    "\"mean_batch_size\": %.2f, \"p50_latency_ms\": %.3f, "
                    "\"p99_latency_ms\": %.3f, \"steals\": %llu}%s\n",
                    kShardCounts[si], kShardClients[c], r.wall_sps,
                    r.modeled_sps, r.max_modeled_busy_seconds,
                    r.completed_systems, r.mean_batch, r.p50_ms, r.p99_ms,
                    r.steals,
                    si + 1 == std::size(kShardCounts) &&
                            c + 1 == std::size(kShardClients)
                        ? ""
                        : ",");
            }
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"overload\": [\n");
        for (std::size_t i = 0; i < std::size(kOverloadFactors); ++i) {
            const overload_result& r = overload[i];
            std::fprintf(
                f,
                "    {\"offered_over_capacity\": %.1f, "
                "\"offered_solves_per_sec\": %.1f, "
                "\"accepted_solves_per_sec\": %.1f, "
                "\"shed_fraction\": %.3f, \"completed\": %llu, "
                "\"shed\": %llu, \"expired\": %llu, "
                "\"p50_latency_ms\": %.3f, "
                "\"p99_latency_ms\": %.3f, \"brownout_batches\": %llu, "
                "\"brownout_max\": %lld}%s\n",
                kOverloadFactors[i], r.offered_sps, r.accepted_sps,
                r.shed_fraction, r.completed, r.shed, r.expired, r.p50_ms,
                r.p99_ms, r.brownout_batches, r.brownout_max,
                i + 1 == std::size(kOverloadFactors) ? "" : ",");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f,
                     "  \"overload_capacity_solves_per_sec\": %.1f,\n",
                     capacity);
        std::fprintf(f,
                     "  \"overload_accepted_p99_ratio_2x_vs_unsat\": "
                     "%.3f,\n",
                     overload_p99_ratio);
        std::fprintf(f,
                     "  \"modeled_scaling_2_shards_at_%d_clients\": %.3f,\n",
                     kShardClients[stop_c], scaling_2);
        std::fprintf(f,
                     "  \"modeled_scaling_4_shards_at_%d_clients\": %.3f,\n",
                     kShardClients[stop_c], scaling_4);
        std::fprintf(f,
                     "  \"p99_ms_1_shard_at_%d_clients\": %.3f,\n",
                     kShardClients[stop_c],
                     shard_results[0][stop_c].p99_ms);
        std::fprintf(f,
                     "  \"p99_ms_2_shards_at_%d_clients\": %.3f,\n",
                     kShardClients[stop_c],
                     shard_results[1][stop_c].p99_ms);
        std::fprintf(f, "  \"bit_identical_across_shard_counts\": %s,\n",
                     shard_bits_identical ? "true" : "false");
        std::fprintf(f,
                     "  \"speedup_coalesced_vs_batch1_at_%d_clients\": "
                     "%.3f,\n",
                     kClients[top], speedup);
        std::fprintf(f,
                     "  \"speedup_graph_replay_vs_coalesced_at_%d_clients"
                     "\": %.3f,\n",
                     kClients[top], graph_speedup);
        std::fprintf(f,
                     "  \"speedup_persistent_vs_coalesced_at_%d_clients"
                     "\": %.3f\n}\n",
                     kClients[top], persistent_speedup);
        std::fclose(f);
        std::printf("wrote %s\n", json_path);
    }
    return 0;
}
