file(REMOVE_RECURSE
  "CMakeFiles/test_float_sweep.dir/test_float_sweep.cpp.o"
  "CMakeFiles/test_float_sweep.dir/test_float_sweep.cpp.o.d"
  "test_float_sweep"
  "test_float_sweep.pdb"
  "test_float_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_float_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
