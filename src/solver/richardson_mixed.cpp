// Mixed-precision instantiations: double compute over fp32 storage
// (mat::storage_precision::fp32). Kept in a separate translation unit so
// the native builds stay as cheap to compile as before the storage axis.
#include "solver/richardson_impl.hpp"
#include "solver/instantiate.hpp"

namespace batchlin::solver {

BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_RICHARDSON, double, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_RICHARDSON_BOUND, double, float)

}  // namespace batchlin::solver
