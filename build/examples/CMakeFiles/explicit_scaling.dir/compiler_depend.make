# Empty compiler generated dependencies file for explicit_scaling.
# This may be replaced when dependencies are built.
