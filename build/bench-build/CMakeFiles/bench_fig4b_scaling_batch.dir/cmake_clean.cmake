file(REMOVE_RECURSE
  "../bench/bench_fig4b_scaling_batch"
  "../bench/bench_fig4b_scaling_batch.pdb"
  "CMakeFiles/bench_fig4b_scaling_batch.dir/bench_fig4b_scaling_batch.cpp.o"
  "CMakeFiles/bench_fig4b_scaling_batch.dir/bench_fig4b_scaling_batch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_scaling_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
