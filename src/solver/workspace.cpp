#include "solver/workspace.hpp"

#include "util/error.hpp"

namespace batchlin::solver {

std::string to_string(solver_type s)
{
    switch (s) {
    case solver_type::cg:
        return "BatchCg";
    case solver_type::bicgstab:
        return "BatchBicgstab";
    case solver_type::gmres:
        return "BatchGmres";
    case solver_type::trsv:
        return "BatchTrsv";
    case solver_type::richardson:
        return "BatchRichardson";
    }
    return "?";
}

index_type slm_plan::find(const std::string& name) const
{
    for (index_type i = 0; i < static_cast<index_type>(entries.size());
         ++i) {
        if (entries[i].name == name) {
            return i;
        }
    }
    BATCHLIN_ENSURE_MSG(false, "unknown workspace entry: " + name);
    return -1;
}

bool slm_plan::in_slm(const std::string& name) const
{
    return entries[find(name)].in_slm;
}

bound_plan::bound_plan(const slm_plan& plan)
{
    slots_.reserve(plan.entries.size());
    size_type spill_offset = 0;
    for (const slm_plan::entry& e : plan.entries) {
        slot s;
        s.elems = e.elems;
        s.in_slm = e.in_slm;
        s.spill_offset = spill_offset;
        if (!e.in_slm) {
            spill_offset += e.elems;
        }
        slots_.push_back(s);
    }
    zero_spill_ = plan.zero_spill;
#ifndef NDEBUG
    source_ = &plan;
#endif
}

namespace {

/// One named vector request in priority order.
struct request {
    const char* name;
    size_type elems;
};

std::vector<request> priority_list(solver_type solver, index_type rows,
                                   size_type precond_elems,
                                   index_type restart)
{
    const size_type n = rows;
    std::vector<request> list;
    switch (solver) {
    case solver_type::cg:
        // Paper §3.5: decreasing priority r, z, p, t, x, then the
        // preconditioner workspace if SLM remains.
        list = {{"r", n}, {"z", n}, {"p", n}, {"t", n}, {"x", n}};
        break;
    case solver_type::bicgstab:
        // Most frequently touched vectors first: the residual and the
        // direction/update vectors of every iteration, then the hat
        // vectors, the shadow residual (read-only after setup), and x.
        list = {{"r", n},     {"p", n},     {"v", n},
                {"s", n},     {"t", n},     {"p_hat", n},
                {"s_hat", n}, {"r_hat", n}, {"x", n}};
        break;
    case solver_type::gmres: {
        const size_type m = restart;
        // The small Hessenberg system and rotations are touched every
        // inner step; the basis dominates the footprint and comes after
        // the per-step scratch.
        list = {{"w", n},
                {"hessenberg", (m + 1) * m},
                {"givens", 3 * (m + 1)},  // cs, sn, g stacked
                {"basis", (m + 1) * n},
                {"x", n},
                {"y", m}};
        break;
    }
    case solver_type::trsv:
        list = {{"x", n}};
        break;
    case solver_type::richardson:
        list = {{"r", n}, {"z", n}, {"t", n}, {"x", n}};
        break;
    }
    if (precond_elems > 0) {
        list.push_back({"precond", precond_elems});
    }
    return list;
}

}  // namespace

namespace {

slm_plan build_plan(solver_type solver, index_type rows,
                    size_type precond_elems, size_type slm_budget,
                    size_type value_size, index_type gmres_restart,
                    slm_mode mode)
{
    slm_plan plan;
    size_type used = 0;
    for (const request& req :
         priority_list(solver, rows, precond_elems, gmres_restart)) {
        const size_type bytes = req.elems * value_size;
        bool place_slm = false;
        switch (mode) {
        case slm_mode::priority:
            place_slm = used + bytes <= slm_budget;
            break;
        case slm_mode::none:
            place_slm = false;
            break;
        case slm_mode::all:
            place_slm = true;
            break;
        }
        if (place_slm) {
            used += bytes;
        } else {
            plan.global_elems_per_group += req.elems;
        }
        plan.entries.push_back({req.name, req.elems, place_slm});
    }
    plan.slm_bytes = used;
    return plan;
}

}  // namespace

slm_plan plan_workspace(solver_type solver, index_type rows, index_type nnz,
                        size_type precond_elems, size_type slm_budget,
                        size_type value_size, index_type gmres_restart,
                        slm_mode mode)
{
    BATCHLIN_ENSURE_MSG(rows >= 0 && nnz >= 0, "negative dimensions");
    BATCHLIN_ENSURE_MSG(value_size > 0, "invalid value size");
    BATCHLIN_ENSURE_MSG(solver != solver_type::gmres || gmres_restart > 0,
                        "GMRES requires a positive restart length");

    // Planning is pure in its arguments; repeated solves of one shape (the
    // bench and figure sweeps) hit the same key every time, so memoize the
    // most recent plan per thread and skip rebuilding the entry list.
    struct memo_key {
        solver_type solver;
        index_type rows;
        size_type precond_elems;
        size_type slm_budget;
        size_type value_size;
        index_type gmres_restart;
        slm_mode mode;

        bool operator==(const memo_key&) const = default;
    };
    const memo_key key{solver,     rows,          precond_elems, slm_budget,
                       value_size, gmres_restart, mode};
    thread_local memo_key cached_key;
    thread_local slm_plan cached_plan;
    thread_local bool cached = false;
    if (!cached || !(key == cached_key)) {
        cached_plan = build_plan(solver, rows, precond_elems, slm_budget,
                                 value_size, gmres_restart, mode);
        cached_key = key;
        cached = true;
    }
    return cached_plan;
}

}  // namespace batchlin::solver
