// Execution policy: which programming model the kernels are compiled for.
//
// The paper ports the same solver kernels between two programming models:
//  * SYCL/DPC++ on Intel PVC — sub-group sizes 16 or 32, work-group-level
//    reduction primitives, SLM allocated from the L1 (§2.3, §3.2).
//  * CUDA on NVIDIA A100/H100 — warp size fixed at 32, only warp-level
//    reductions available (§3.2).
// exec_policy captures exactly those differences so the identical kernel
// source takes the model-appropriate paths, mirroring how the authors
// maintain one algorithm across backends.
#pragma once

#include <string>
#include <vector>

#include "util/math.hpp"

namespace batchlin::xpu {

/// Programming model the kernels execute under.
enum class prog_model {
    sycl,
    cuda,
};

/// Reduction strategy inside a work-group (paper §3.2 and §3.6).
enum class reduce_path {
    /// Whole-work-group reduction via the SYCL group primitive (SLM based).
    group,
    /// Sub-group (warp) shuffles, with a small SLM combine across sub-groups
    /// only when the work-group spans more than one sub-group.
    sub_group,
};

/// Describes the execution model the kernels are specialized for.
struct exec_policy {
    prog_model model = prog_model::sycl;
    /// Sub-group sizes the device supports (PVC: {16, 32}; CUDA: {32}).
    std::vector<index_type> allowed_sub_group_sizes{16, 32};
    /// Whether the programming model offers an efficient work-group-level
    /// reduction primitive (SYCL: yes; CUDA: no, §3.2).
    bool has_group_reduction = true;
    /// Number of GPU stacks the batch is spread across (PVC-2S: 2, §2.2).
    index_type num_stacks = 1;
    /// SLM budget one work-group may claim (bytes). The SLM planner fills
    /// this greedily by vector priority (§3.5).
    size_type slm_bytes_per_group = 128 * 1024;
    /// Rows at or below this threshold select sub-group size 16 (PVC only);
    /// larger matrices use 32. Determined experimentally per device (§3.6).
    index_type sub_group_switch_rows = 64;
    /// Rows at or below this threshold use the sub-group reduction path to
    /// avoid SLM round-trips; larger systems use the group path (§3.2).
    index_type sub_group_reduce_rows = 32;
    /// Maximum work-group size the device can schedule.
    index_type max_work_group_size = 1024;
    /// Wall-clock cost charged to every `run_batch`, emulating the fixed
    /// submission overhead of a real device queue (the `kernel_launch_us`
    /// of the analytic device model; 4-8 us on the paper's GPUs). The
    /// simulator's native launch path costs well under a microsecond, so
    /// without this knob host-side wall-clock studies under-state the
    /// per-launch cost that batching amortizes (§3.4). Zero (the default)
    /// disables emulation; figure benches and tests run with zero.
    double emulated_launch_us = 0.0;

    /// True when `size` is one of the supported sub-group sizes.
    bool supports_sub_group(index_type size) const;
};

/// Policy matching the paper's SYCL configuration on one or two PVC stacks.
exec_policy make_sycl_policy(index_type num_stacks = 1,
                             size_type slm_bytes_per_group = 128 * 1024);

/// Policy matching the paper's CUDA configuration (A100/H100).
exec_policy make_cuda_policy(size_type slm_bytes_per_group);

/// Human-readable model name for logs and benchmark tables.
std::string to_string(prog_model model);
std::string to_string(reduce_path path);

}  // namespace batchlin::xpu
