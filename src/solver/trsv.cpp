#include "solver/trsv.hpp"

#include "blas/device_blas.hpp"
#include "blas/matrix_view.hpp"
#include "solver/kernel_common.hpp"
#include "util/error.hpp"

namespace batchlin::solver {

template <typename T>
triangle detect_triangle(const mat::batch_csr<T>& a)
{
    BATCHLIN_ENSURE_MSG(a.rows() == a.cols(),
                        "triangular solve requires square systems");
    bool lower = true;
    bool upper = true;
    bool full_diag = true;
    for (index_type i = 0; i < a.rows(); ++i) {
        bool has_diag = false;
        for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1]; ++k) {
            const index_type j = a.col_idxs()[k];
            lower = lower && j <= i;
            upper = upper && j >= i;
            has_diag = has_diag || j == i;
        }
        full_diag = full_diag && has_diag;
    }
    BATCHLIN_ENSURE_MSG(full_diag,
                        "BatchTrsv requires a full diagonal in the pattern");
    if (lower) {
        return triangle::lower;
    }
    if (upper) {
        return triangle::upper;
    }
    BATCHLIN_UNSUPPORTED("BatchTrsv requires a triangular pattern");
}

template <typename T>
void run_trsv(xpu::queue& q, const mat::batch_csr<T>& a,
              const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
              triangle mode, const slm_plan& plan,
              const kernel_config& config, log::batch_log& logger,
              xpu::batch_range range)
{
    const triangle tri =
        mode == triangle::automatic ? detect_triangle(a) : mode;
    const index_type rows = a.rows();
    const bound_plan slots(plan);  // resolved once, host side (§3.5)
    spill_buffer<T> spill(q, plan, range.size());
    mat::batch_dense<T>* x_out = &x;

    q.run_batch(
        range.size(), config.work_group_size, config.sub_group_size,
        [&, tri, rows](xpu::group& g) {
            const index_type batch = g.id();
            const index_type local = batch - range.begin;
            workspace_binder<T> bind(g, slots, spill.for_group(local));
            xpu::dspan<T> x_loc = bind.take("x");

            const auto a_view = blas::item_view(a, batch);
            const auto b_view = b.item_span(batch, xpu::mem_space::constant);
            auto x_global = x_out->item_span(batch);

            // The substitution is sequential across rows within one system;
            // the row-internal accumulations are lane work.
            double flops = 0.0;
            if (tri == triangle::lower) {
                for (index_type i = 0; i < rows; ++i) {
                    T sum = b_view[i];
                    T diag{1};
                    for (index_type k = a_view.row_ptrs[i];
                         k < a_view.row_ptrs[i + 1]; ++k) {
                        const index_type j = a_view.col_idxs[k];
                        if (j == i) {
                            diag = a_view.values[k];
                        } else {
                            sum -= a_view.values[k] * x_loc[j];
                            flops += 2.0;
                        }
                    }
                    x_loc[i] = sum / diag;
                    flops += 1.0;
                }
            } else {
                for (index_type i = rows - 1; i >= 0; --i) {
                    T sum = b_view[i];
                    T diag{1};
                    for (index_type k = a_view.row_ptrs[i];
                         k < a_view.row_ptrs[i + 1]; ++k) {
                        const index_type j = a_view.col_idxs[k];
                        if (j == i) {
                            diag = a_view.values[k];
                        } else {
                            sum -= a_view.values[k] * x_loc[j];
                            flops += 2.0;
                        }
                    }
                    x_loc[i] = sum / diag;
                    flops += 1.0;
                }
            }
            g.barrier();
            g.stats().flops += flops;
            blas::detail::charge_read(g, a_view.values, a_view.nnz);
            blas::detail::charge_read(g, b_view, rows);
            blas::detail::charge_write(g, x_loc, rows);
            g.stats().constant_read_bytes +=
                static_cast<double>(a_view.nnz + rows + 1) *
                sizeof(index_type);

            blas::copy<T>(g, x_loc, x_global);
            // A direct sweep is exact: record one "iteration", converged.
            record_outcome(g, logger, batch, 1, T{0},
                           log::solve_status::converged);
        },
        range.begin, "batch_trsv");
}

#define BATCHLIN_INSTANTIATE_TRSV(T)                                        \
    template triangle detect_triangle<T>(const mat::batch_csr<T>&);         \
    template void run_trsv<T>(xpu::queue&, const mat::batch_csr<T>&,        \
                              const mat::batch_dense<T>&,                   \
                              mat::batch_dense<T>&, triangle,               \
                              const slm_plan&, const kernel_config&,        \
                              log::batch_log&, xpu::batch_range)

BATCHLIN_INSTANTIATE_TRSV(float);
BATCHLIN_INSTANTIATE_TRSV(double);

}  // namespace batchlin::solver
