// Analytic kernel-time model.
//
// Converts the instrumented counters of a batched solve into an estimated
// device runtime: a bounded-resource model where the launch pays a fixed
// overhead and the kernel time is the maximum of the per-resource times
// (FP pipeline, HBM, last-level cache, SLM), with occupancy derived from
// the per-work-group SLM footprint exactly as the paper's Advisor analysis
// describes (§4.4: SLM capacity per work-group limits how many groups an
// Xe-core keeps in flight, trading occupancy for SLM locality).
//
// Counters measure the kernels actually executed by the simulator; they are
// device-independent. Only the translation to seconds is modeled.
#pragma once

#include "perfmodel/device_spec.hpp"
#include "xpu/counters.hpp"

namespace batchlin::perf {

/// Everything the model needs to know about one batched solve.
struct solve_profile {
    /// Aggregated counters of the fused kernel launch (whole batch).
    xpu::counters totals;
    index_type num_systems = 0;
    index_type work_group_size = 0;
    /// Rows / padded work-group size (launch round-up waste, §3.6).
    double thread_utilization = 1.0;
    /// Read-only bytes per system (matrix values + rhs): resident in the
    /// last-level cache when the working set fits (§4.4).
    size_type constant_footprint_per_system = 0;
    /// True for double precision.
    bool fp64 = true;
};

/// Per-resource time split of one estimate.
struct time_breakdown {
    double flop_seconds = 0.0;
    double hbm_seconds = 0.0;
    double l2_seconds = 0.0;
    double slm_seconds = 0.0;
    double launch_seconds = 0.0;
    double total_seconds = 0.0;
    /// Resident work-groups across the device.
    index_type groups_in_flight = 0;
    /// Fraction of the device's thread slots occupied (the "XVE Threading
    /// Occupancy" of the paper's Advisor analysis).
    double occupancy = 0.0;
    /// Name of the binding resource ("FLOP", "HBM", "L3", "SLM").
    const char* bound_by = "";
};

/// Scales the extensive counter fields (traffic, flops, iterations) by
/// `factor`; launches and footprints are intensive and stay unchanged.
/// Used to project a measurement batch onto the paper's 2^17 batch size.
xpu::counters scale_counters(const xpu::counters& c, double factor);

/// Estimates the runtime of the profiled solve on `device`.
time_breakdown estimate_time(const device_spec& device,
                             const solve_profile& profile);

}  // namespace batchlin::perf
