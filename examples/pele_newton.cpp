// PeleLM-style outer loop: BDF/Newton chemistry integration with batched
// inner linear solves (the paper's motivating application, §1/§2).
//
// Each mesh cell carries a stiff reaction ODE; a BDF step requires solving
// the non-linear system with Newton, and every Newton step solves one
// linear system per cell — all cells sharing the Jacobian sparsity
// pattern. This example demonstrates the two properties the paper argues
// make batched *iterative* solvers the right tool here:
//  1. warm starts: the previous Newton step's solution seeds the next
//     solve, cutting iterations sharply;
//  2. tunable accuracy: the linear tolerance follows the outer Newton
//     residual instead of always solving to machine precision.
#include <cmath>
#include <cstdio>
#include <vector>

#include "batchlin/batchlin.hpp"

using namespace batchlin;

namespace {

/// Simulated Newton update: A_i changes mildly between steps (gamma and
/// the linearization point move), the rhs is the new Newton residual.
void advance_systems(mat::batch_csr<double>& a, mat::batch_dense<double>& b,
                     rng& gen, double step_scale)
{
    for (index_type item = 0; item < a.num_batch_items(); ++item) {
        double* vals = a.item_values(item);
        for (index_type k = 0; k < a.nnz(); ++k) {
            vals[k] *= 1.0 + step_scale * gen.uniform(-0.05, 0.05);
        }
    }
    for (double& v : b.values()) {
        v *= step_scale;
    }
}

}  // namespace

int main()
{
    const work::mechanism mech = work::mechanism_by_name("dodecane_lu");
    const index_type cells = 1024;  // mesh cells == batch entries
    const index_type newton_steps = 6;

    mat::batch_csr<double> a_csr =
        work::generate_mechanism_batch<double>(mech, cells);
    mat::batch_dense<double> b =
        work::mechanism_rhs<double>(cells, mech.rows, 77);
    mat::batch_dense<double> x(cells, mech.rows, 1);
    rng gen(2026);

    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::jacobi;
    batch_solver handle(perf::pvc_1s(), opts);

    std::printf("PeleLM-style Newton loop: %d cells of %s (%dx%d, nnz %d)\n",
                cells, mech.name.c_str(), mech.rows, mech.rows, mech.nnz);
    std::printf("%6s | %10s | %12s | %12s | %14s\n", "step", "lin. tol",
                "mean iters", "max iters", "worst rel.res");
    for (int step = 0; step < newton_steps; ++step) {
        // Tunable accuracy: the Newton residual contracts, so the linear
        // tolerance tightens with it — early steps solve loosely (§2.1).
        const double newton_residual = std::pow(10.0, -1.5 * step);
        const double lin_tol =
            std::max(1e-10, 1e-2 * newton_residual);
        handle.options().criterion = stop::relative(lin_tol, 200);

        // Warm start: x still holds the previous step's solution.
        const solver::batch_matrix<double> a = a_csr;
        const solver::solve_result result = handle.solve<double>(a, b, x);

        const auto rel = solver::relative_residual_norms(a, b, x);
        double worst = 0.0;
        for (double r : rel) {
            worst = std::max(worst, r);
        }
        std::printf("%6d | %10.1e | %12.1f | %12d | %14.3e%s\n", step,
                    lin_tol, result.log.mean_iterations(),
                    result.log.max_iterations(), worst,
                    result.log.num_converged() == cells ? ""
                                                        : "  [!]");

        // Outer update: perturb the Jacobians and shrink the residual.
        advance_systems(a_csr, b, gen, 0.3);
    }

    std::printf("\nlater steps start from the previous solution and a "
                "looser-to-tighter tolerance schedule —\nthe iteration "
                "counts show the warm-start benefit the paper motivates "
                "batched iterative solvers with.\n");
    return 0;
}
