// Deterministic device-fault injection.
//
// Real accelerator deployments fail in ways the simulator's happy path
// never exercises: kernel launches are rejected by the runtime, SLM
// allocation fails under occupancy pressure, and transient memory faults
// corrupt workspace mid-kernel. The portability literature (Reguly's SYCL
// study; Ginkgo's porting papers) shows such failure behaviour is backend
// dependent, so the resilience layers above (`solver::solve_resilient`,
// `serve::solve_service`) must be provable against *scheduled* faults: a
// `fault_plan` on the `exec_policy` describes exactly which launch, which
// group, and which barrier phase gets hit, and the same plan replays the
// identical schedule on every run. An empty plan costs one branch per
// launch and nothing per work-item.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"

namespace batchlin::xpu {

/// Error reported by the simulated device runtime when an injected fault
/// (or a real launch-resource failure) aborts a kernel launch. Callers
/// that implement recovery (retry, fallback, degradation) catch exactly
/// this type; programming errors keep throwing the base `batchlin::error`
/// and are never retried.
class device_error : public error {
    using error::error;
};

/// What kind of fault an event injects.
enum class fault_kind {
    /// The launch itself fails: `run_batch` throws `device_error` before
    /// any group executes — the analogue of a queue-submission failure.
    launch_fail,
    /// The chosen group's Nth SLM-arena allocation throws `device_error`
    /// mid-kernel — the analogue of exceeding the SLM budget at runtime.
    alloc_fail,
    /// A workspace region of the chosen group is poisoned at a chosen
    /// barrier phase — the analogue of a transient device memory fault.
    poison,
    /// Sticky device loss: every launch in [`launch`, `revive`) throws
    /// `device_error` before any group executes (revive == 0 means the
    /// device never comes back). The analogue of a stack dropping off the
    /// bus: retries on the same queue keep failing until the device is
    /// revived, which is what forces the serve layer to fail over.
    device_lost,
    /// The launch wedges: `run_batch` blocks for `hang_us` microseconds
    /// and then throws `device_error`. The bounded sleep keeps test
    /// runtimes finite while still tripping any watchdog whose timeout is
    /// shorter than the hang.
    hang,
};

/// Which memory a `poison` event corrupts.
enum class fault_target {
    /// The group's live SLM arena allocations.
    slm,
    /// The group's spilled (global-memory) workspace slice; falls back to
    /// SLM when the kernel spilled nothing.
    spill,
};

/// How a `poison` event corrupts the chosen bytes.
enum class poison_mode {
    /// Overwrites 8 bytes with 0xFF — a NaN in both float and double.
    nan,
    /// Flips a single bit — silent corruption that stays finite.
    bitflip,
};

/// One scheduled fault. Events are matched by the queue's 0-based launch
/// counter (every `run_batch` call increments it, failed ones included),
/// so a schedule replays identically for the same call sequence.
struct fault_event {
    fault_kind kind = fault_kind::launch_fail;
    /// Launch index (0-based count of `run_batch` calls on the queue).
    std::uint64_t launch = 0;
    /// Global group id the fault targets (alloc_fail / poison).
    index_type group = 0;
    /// alloc_fail: 0-based index of the SLM allocation that throws.
    /// poison: 1-based barrier count after which the poison strikes.
    index_type phase = 1;
    fault_target target = fault_target::slm;
    poison_mode mode = poison_mode::nan;
    /// device_lost: first launch index at which the device works again
    /// (0 = lost forever). Probe launches advance the same counter, so a
    /// revival schedule composes with serve-side half-open probing.
    std::uint64_t revive = 0;
    /// hang: how long the wedged launch blocks before failing.
    std::uint32_t hang_us = 0;

    friend bool operator==(const fault_event&,
                           const fault_event&) = default;
};

/// A deterministic fault schedule. The seed feeds both the schedule
/// generator and the per-strike offset/bit selection, so one integer
/// reproduces the entire failure scenario.
struct fault_plan {
    unsigned seed = 0x5eedfa17u;
    std::vector<fault_event> events;

    bool empty() const { return events.empty(); }

    friend bool operator==(const fault_plan&, const fault_plan&) = default;
};

/// Knobs of the randomized schedule generator (see `random_fault_plan`).
struct fault_schedule_config {
    /// Launch indices [0, num_launches) the schedule may hit.
    std::uint64_t num_launches = 64;
    /// Groups [0, num_groups) a group-scoped fault may target.
    index_type num_groups = 16;
    /// Expected fraction of launches that receive a fault.
    double fault_rate = 0.25;
    /// Barrier phases [1, max_phase] a poison strike may choose.
    index_type max_phase = 24;
};

/// Draws a randomized-but-deterministic schedule over all fault classes:
/// the same seed always produces the same event list (the soak tests pin
/// this down), and distinct seeds decorrelate quickly.
fault_plan random_fault_plan(unsigned seed,
                             const fault_schedule_config& config);

/// Deterministic 64-bit mix used for strike offset/bit selection; exposed
/// so tests can predict where a poison lands.
std::uint64_t fault_mix(std::uint64_t a, std::uint64_t b);

std::string to_string(fault_kind kind);
std::string to_string(fault_target target);
std::string to_string(poison_mode mode);

}  // namespace batchlin::xpu
