#!/usr/bin/env bash
# Sweeps the CLI driver over every (input x device) pair and collects the
# JSON records — a scripting example for regression tracking.
#
# Usage: scripts/sweep_devices.sh [build-dir] > sweep.jsonl
set -euo pipefail

BUILD_DIR=${1:-build}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
BATCHSOLVE="$ROOT/$BUILD_DIR/tools/batchsolve"

for input in drm19 gri12 gri30 dodecane_lu isooctane; do
    for device in A100 H100 PVC-1S PVC-2S; do
        "$BATCHSOLVE" --input "$input" --batch 268 --device "$device" \
            --precond jacobi --verify --json
    done
done
