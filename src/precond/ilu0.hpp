// BatchIlu: incomplete LU factorization with zero fill-in (ILU(0)).
//
// Generation factorizes each system in-place on the shared CSR pattern
// (no fill, no pivoting); the factors live in the preconditioner workspace,
// which the SLM planner places in local memory when it fits (§3.5).
// Application solves L z' = r (unit lower) then U z = z' with the in-kernel
// sparse triangular sweeps — the same building block as BatchTrsv.
// Requires a sorted CSR pattern with a full diagonal.
//
// S is the storage type of the factors: under fp32 storage the
// factorization runs and stores in float (acceptable for a preconditioner
// — it only needs to approximate A^{-1}), packed into the leading bytes of
// the T-typed workspace; the triangular sweeps widen to T on read.
#pragma once

#include <vector>

#include "blas/device_blas.hpp"
#include "blas/matrix_view.hpp"
#include "matrix/batch_csr.hpp"
#include "precond/types.hpp"

namespace batchlin::precond {

template <typename T, typename S = T>
class ilu0 {
public:
    static constexpr type kind = type::ilu;

    /// Precomputes the diagonal positions of the shared pattern; throws if
    /// any diagonal entry is missing (ILU(0) breaks down without it).
    explicit ilu0(const mat::batch_csr<T>& a);

    /// Factors (nnz, packed at storage width) plus the intermediate
    /// vector of the two-stage solve (compute width).
    static size_type workspace_elems(index_type rows, index_type nnz)
    {
        return packed_elems<T, S>(static_cast<size_type>(nnz)) +
               static_cast<size_type>(rows);
    }

    struct applier {
        index_type rows = 0;
        index_type nnz = 0;
        const index_type* row_ptrs = nullptr;
        const index_type* col_idxs = nullptr;
        const index_type* diag_pos = nullptr;
        xpu::dspan<const S> factors;
        xpu::dspan<T> temp;

        void apply(xpu::group& g, xpu::dspan<const T> r,
                   xpu::dspan<T> z) const;
    };

    /// Runs the in-pattern factorization of this work-group's system into
    /// `work` and returns the applier bound to the factored values.
    applier generate(xpu::group& g, const blas::csr_view<T, S>& a,
                     xpu::dspan<T> work) const;

private:
    std::vector<index_type> diag_positions_;
};

}  // namespace batchlin::precond
