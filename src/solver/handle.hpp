// batch_solver: the high-level public façade.
//
// Binds a target device (execution policy + performance model) to a solve
// configuration, runs batched solves through the multi-level dispatch, and
// projects the measured kernel counters onto the device performance model —
// the workflow of the paper's evaluation: run the kernels, then read
// runtime and roofline characteristics per device.
#pragma once

#include "perfmodel/cost_model.hpp"
#include "perfmodel/device_spec.hpp"
#include "perfmodel/roofline.hpp"
#include "solver/dispatch.hpp"

namespace batchlin {

/// Builds the performance-model profile of a finished solve, projected from
/// the measured batch to `target_items` systems (counters scale linearly in
/// the batch size because the systems are independent and near-identical).
template <typename T>
perf::solve_profile make_profile(const solver::solve_result& result,
                                 const solver::batch_matrix<T>& a,
                                 index_type target_items);

/// High-level solver handle bound to one device and one configuration.
class batch_solver {
public:
    batch_solver(perf::device_spec device, solver::solve_options options)
        : device_(std::move(device)),
          queue_(device_.make_policy()),
          options_(std::move(options))
    {}

    /// Runs one batched solve (x: initial guess in, solution out).
    template <typename T>
    solver::solve_result solve(const solver::batch_matrix<T>& a,
                               const mat::batch_dense<T>& b,
                               mat::batch_dense<T>& x)
    {
        return solver::solve<T>(queue_, a, b, x, options_);
    }

    /// Estimated runtime of `result` on this handle's device, projected to
    /// `target_items` systems.
    template <typename T>
    perf::time_breakdown project(const solver::solve_result& result,
                                 const solver::batch_matrix<T>& a,
                                 index_type target_items) const
    {
        return perf::estimate_time(device_,
                                   make_profile<T>(result, a, target_items));
    }

    /// Roofline report of `result` on this device (Fig. 8 reproduction).
    template <typename T>
    perf::roofline_report roofline(const solver::solve_result& result,
                                   const solver::batch_matrix<T>& a,
                                   index_type target_items) const
    {
        return perf::analyze_roofline(
            device_, make_profile<T>(result, a, target_items));
    }

    const perf::device_spec& device() const { return device_; }
    xpu::queue& queue() { return queue_; }
    const xpu::queue& queue() const { return queue_; }
    solver::solve_options& options() { return options_; }
    const solver::solve_options& options() const { return options_; }

private:
    perf::device_spec device_;
    xpu::queue queue_;
    solver::solve_options options_;
};

}  // namespace batchlin
